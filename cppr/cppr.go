// Package cppr is the public facade of fastcppr: a common-path-pessimism-
// removal (CPPR) timing engine that reports the top-k post-CPPR critical
// paths of a design.
//
// The default algorithm is the DAC 2021 LCA-depth-grouping algorithm of
// Guo, Huang and Lin ("A Provably Good and Practically Efficient Algorithm
// for Common Path Pessimism Removal in Large Designs"), whose runtime is
// O(nD) for the top path and O(nDk log k) for top-k, where D is the clock
// tree depth. Three reimplemented state-of-the-art baselines (OpenTimer-,
// HappyTimer- and iTimerC-style) are selectable for comparison studies;
// all four produce exact, full-accuracy results.
//
// Basic use:
//
//	d, err := tau.ReadFile("design.cppr")
//	t := cppr.NewTimer(d)
//	rep, err := t.Run(ctx, cppr.Query{K: 10, Mode: model.Setup})
//	for _, p := range rep.Paths { fmt.Print(p.Format(d)) }
//
// Parallelism is configured once per Timer via SetParallelism and
// resolved per axis: a query's intra-query budget is Query.Threads,
// falling back to Parallelism.QueryThreads, falling back to
// GOMAXPROCS; the executor pool that spreads (query × corner) units in
// ReportBatch and corners in multi-corner Run/PostCPPRSlacksCtx is
// Parallelism.Workers, falling back to GOMAXPROCS. Every setting
// produces byte-identical reports — thread counts change wall-clock
// only.
package cppr

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fastcppr/internal/baseline"
	"fastcppr/internal/core"
	"fastcppr/internal/lca"
	"fastcppr/internal/qerr"
	"fastcppr/internal/sched"
	"fastcppr/internal/sta"
	"fastcppr/model"
	"fastcppr/sdc"
)

// Algorithm selects which CPPR implementation answers a query.
type Algorithm int

const (
	// AlgoLCA is the paper's algorithm (default): per-clock-tree-level
	// candidate generation, independent of the FF count.
	AlgoLCA Algorithm = iota
	// AlgoPairwise is the OpenTimer-style per-launch-FF baseline.
	AlgoPairwise
	// AlgoBlockwise is the HappyTimer-style launch-set block baseline.
	AlgoBlockwise
	// AlgoBranchAndBound is the iTimerC-style pre-CPPR-ordered
	// branch-and-bound baseline.
	AlgoBranchAndBound
	// AlgoBruteForce enumerates every path; exponential, for tiny
	// designs and validation only.
	AlgoBruteForce
	// AlgoRerankInexact is the pre-CPPR-then-rerank heuristic: top-k by
	// pre-CPPR slack, credits applied afterwards. It is NOT exact — it
	// can miss true post-CPPR critical paths — and exists to quantify
	// why exact CPPR search matters. Never use it for signoff.
	AlgoRerankInexact
)

// String returns the short name used by CLI flags and reports.
func (a Algorithm) String() string {
	switch a {
	case AlgoLCA:
		return "lca"
	case AlgoPairwise:
		return "pairwise"
	case AlgoBlockwise:
		return "blockwise"
	case AlgoBranchAndBound:
		return "bnb"
	case AlgoBruteForce:
		return "brute"
	case AlgoRerankInexact:
		return "rerank"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a short name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "lca", "ours", "":
		return AlgoLCA, nil
	case "pairwise", "opentimer":
		return AlgoPairwise, nil
	case "blockwise", "happytimer":
		return AlgoBlockwise, nil
	case "bnb", "itimerc":
		return AlgoBranchAndBound, nil
	case "brute":
		return AlgoBruteForce, nil
	case "rerank":
		return AlgoRerankInexact, nil
	default:
		return 0, fmt.Errorf("cppr: unknown algorithm %q (want lca|pairwise|blockwise|bnb|brute|rerank)", s)
	}
}

// Algorithms lists all selectable algorithms in report order.
var Algorithms = []Algorithm{AlgoLCA, AlgoPairwise, AlgoBlockwise, AlgoBranchAndBound}

// Report is the result of one top-k query.
type Report struct {
	// Paths holds up to K paths sorted ascending by post-CPPR slack.
	Paths []model.Path
	// Elapsed is the query wall time. For a batch-merged query it is the
	// wall time of the shared execution that served it.
	Elapsed time.Duration
	// Algorithm is the implementation that produced the report.
	Algorithm Algorithm
	// Stats carries core-engine counters (AlgoLCA only). For a
	// batch-merged query the counters are those of the shared execution.
	Stats core.Stats
	// Degraded reports that a budgeted baseline (Blockwise MaxTuples,
	// BranchAndBound MaxPops) exhausted its budget and Paths holds only
	// the — individually exact — paths found before truncation; the true
	// top-k may contain paths this report misses. Always false for
	// AlgoLCA, which has no failure budget.
	Degraded bool
	// Corner is the delay corner the report was computed at. For a
	// multi-corner (merged) report it is the critical corner: the
	// corner of Paths[0].
	Corner model.Corner
	// Corners is the query's corner selection after normalization (bit
	// c set means corner c was analysed; see CornerMask).
	Corners CornerMask
	// PathCorners, set only on merged multi-corner reports, names the
	// corner each path was computed at: Paths[i] is a path of corner
	// PathCorners[i]. Nil on single-corner reports.
	PathCorners []model.Corner
}

// WorstSlack returns the most critical reported slack.
func (r *Report) WorstSlack() (model.Time, bool) {
	if len(r.Paths) == 0 {
		return 0, false
	}
	return r.Paths[0].Slack, true
}

// cornerEngines bundles every delay-derived structure of one corner:
// the corner's design view, its clock tree (arrivals/credits on the
// shared topology), the LCA engine, the four baselines, and the
// graph-based arrival windows. One snapshot holds one of these per
// corner it has analysed.
type cornerEngines struct {
	corner model.Corner
	d      *model.Design
	tree   *lca.Tree
	engine *core.Engine
	pw     *baseline.Pairwise
	bw     *baseline.Blockwise
	bb     *baseline.BranchAndBound
	rr     *baseline.Rerank
	// cache memoizes this corner's candidate-generation job results
	// across the snapshot chain, validated against the edit journal.
	// Carried over edits that provably cannot dirty it (other-corner
	// edits); rebuilt fresh whenever the corner's engines are.
	cache *core.JobCache
	// pre holds the graph-based (pre-CPPR) arrival windows, maintained
	// incrementally across edits. It is flushed before the snapshot is
	// published and read-only afterwards: the "one early/late
	// propagation per snapshot" all PreCPPRSlacks calls share.
	pre *sta.Incr
}

// lazyCorner is a build-on-first-use slot for one extra corner's
// engines. Slots are safe for concurrent queries — the built engines
// are published through an atomic pointer, with a mutex serializing
// builders — and are carried across snapshots whenever the edit cannot
// have invalidated them, so a corner's engines are built at most once
// per invalidation. The atomic (rather than sync.Once) lets Fork read
// "built or not yet" race-free without waiting on an in-flight build.
type lazyCorner struct {
	mu sync.Mutex // serializes builders only
	ce atomic.Pointer[cornerEngines]
}

// built returns the slot's engines if already constructed, else nil.
func (l *lazyCorner) built() *cornerEngines { return l.ce.Load() }

// snapshot is one immutable epoch of a Timer: a design plus every
// structure derived from its delays (clock-tree arrivals/credits, CK->Q
// caches, graph-based arrival windows, false-path filter), at every
// corner. Queries load one snapshot pointer and use only it, so an edit
// that publishes a new snapshot never perturbs queries in flight on the
// old one.
//
// Corner 0's engines are built eagerly (the single-corner fast path is
// exactly the pre-MCMM snapshot); extra corners are built lazily on
// first use, sharing the base corner's clock-tree shape (depth arrays,
// jump tables, Euler tour, per-level grouping — topology only, computed
// once) and propagation scratch pool. Only per-corner arrivals, credits
// and CreditAtD tables are corner-private.
type snapshot struct {
	d      *model.Design
	base   *cornerEngines
	extra  []*lazyCorner // slot c-1 serves corner c
	filter *sdc.Filter
	// crprDefault is the credit semantics a Query with CRPRDefault
	// resolves to: same_pin unless an applied SDC set same_transition.
	crprDefault model.CRPRMode

	// journal is the persistent chain of non-rebuilding arc edits since
	// the last full build, and seq its head sequence number (== the
	// snapshot's epoch within the chain). Job-cache entries are
	// validated against it: an entry stored at seq g stays exact iff no
	// journaled edit after g lands a source pin inside the entry's cone.
	// Topology-changing edits (clock arcs, ApplySDC) rebuild everything
	// and reset the journal to nil.
	journal *model.EditJournal
	seq     uint64
	// memo caches whole reports for repeated queries, carried across
	// journaled edits and validated per-lookup against the journal (an
	// entry serves iff no edit after its watermark lands in its cone at
	// its corner). Rebuilding edits (clock arcs, ApplySDC) start fresh.
	memo *queryMemo
	// ctr aggregates cache counters across the Timer's life.
	ctr *timerCounters
	// hier, non-nil in hierarchical mode, carries the flat design and
	// the elaboration maps that route flat-addressed edits onto this
	// snapshot's reduced design (see hier.go). Living on the snapshot
	// keeps it consistent with d under forks and concurrent edits.
	hier *hierState
}

// freshSlots allocates unbuilt lazy slots for n extra corners.
func freshSlots(n int) []*lazyCorner {
	out := make([]*lazyCorner, n)
	for i := range out {
		out[i] = &lazyCorner{}
	}
	return out
}

// newSnapshot builds a full snapshot for d: clock tree, base-corner
// engines, lazy slots for the extra corners, and — unless an up-to-date
// pre is handed over from the previous epoch — a fresh graph-arrival
// propagation.
func newSnapshot(d *model.Design, filter *sdc.Filter, maxTuples, maxPops int, pre *sta.Incr, ctr *timerCounters, crprDefault model.CRPRMode) *snapshot {
	tree := lca.New(d)
	base := &cornerEngines{
		corner: model.BaseCorner,
		d:      d,
		tree:   tree,
		engine: core.NewEngineWithTree(d, tree),
		pw:     baseline.NewPairwise(d, tree),
		bw:     baseline.NewBlockwise(d, tree),
		bb:     baseline.NewBranchAndBound(d, tree),
		rr:     baseline.NewRerank(d, tree),
		cache:  core.NewJobCache(&ctr.job),
		pre:    pre,
	}
	if base.pre == nil {
		base.pre = sta.NewIncr(d)
	}
	if maxTuples > 0 {
		base.bw.MaxTuples = maxTuples
	}
	if maxPops > 0 {
		base.bb.MaxPops = maxPops
	}
	return &snapshot{
		d:           d,
		base:        base,
		extra:       freshSlots(d.NumCorners() - 1),
		filter:      filter,
		crprDefault: crprDefault,
		memo:        newQueryMemo(),
		ctr:         ctr,
	}
}

// rebind derives a snapshot for nd without rebuilding the clock tree,
// journaling the edited arc from -> to. Valid only when nd differs from
// s.d in non-clock base-corner arc delays: the shared lca.Tree
// (arrivals, credits, level tables) and the budgets carried inside the
// rebound baselines stay correct by construction. Extra-corner slots
// are carried as-is — each corner is an independent, complete delay
// set, so a base-corner edit cannot invalidate it — and so are the job
// caches AND the whole-report query memo: the journal entry is what
// invalidates (exactly) the entries whose cone the edit can reach, so
// jobs and reports untouched by the edit survive into the new epoch.
func (s *snapshot) rebind(nd *model.Design, pre *sta.Incr, from, to model.PinID) *snapshot {
	journal := s.journal.Append(model.BaseCorner, from, to)
	return &snapshot{
		d: nd,
		base: &cornerEngines{
			corner: model.BaseCorner,
			d:      nd,
			tree:   s.base.tree,
			engine: s.base.engine.Rebind(nd),
			pw:     s.base.pw.Rebind(nd),
			bw:     s.base.bw.Rebind(nd),
			bb:     s.base.bb.Rebind(nd),
			rr:     s.base.rr.Rebind(nd),
			cache:  s.base.cache,
			pre:    pre,
		},
		extra:       s.extra,
		filter:      s.filter,
		crprDefault: s.crprDefault,
		journal:     journal,
		seq:         journal.Seq(),
		memo:        s.memo,
		ctr:         s.ctr,
		hier:        s.hier,
	}
}

// numCorners returns the corner count of this snapshot's design.
func (s *snapshot) numCorners() int { return 1 + len(s.extra) }

// fullMask is the mask selecting every corner of the design.
func (s *snapshot) fullMask() CornerMask {
	if s.numCorners() >= 64 {
		return CornerAll
	}
	return CornerBit(model.Corner(s.numCorners())) - 1
}

// corner returns corner c's engines, building them on first use. The
// derived engines share the base corner's clock-tree shape and
// propagation scratch pool; arrivals, credits and per-level credit
// tables are recomputed from the corner's delay table.
func (s *snapshot) corner(c model.Corner) *cornerEngines {
	if c == model.BaseCorner {
		return s.base
	}
	slot := s.extra[c-1]
	if ce := slot.ce.Load(); ce != nil {
		return ce
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if ce := slot.ce.Load(); ce != nil {
		return ce
	}
	view := s.d.View(c)
	tree := s.base.tree.Derive(view)
	ce := &cornerEngines{
		corner: c,
		d:      view,
		tree:   tree,
		engine: s.base.engine.Sibling(view, tree),
		pw:     baseline.NewPairwise(view, tree),
		bw:     baseline.NewBlockwise(view, tree),
		bb:     baseline.NewBranchAndBound(view, tree),
		rr:     baseline.NewRerank(view, tree),
		cache:  core.NewJobCache(&s.ctr.job),
		pre:    sta.NewIncr(view),
	}
	ce.bw.MaxTuples = s.base.bw.MaxTuples
	ce.bb.MaxPops = s.base.bb.MaxPops
	slot.ce.Store(ce)
	return ce
}

// normalize validates q against this snapshot: Query.Normalize plus the
// design-dependent checks (CaptureFF range, false-path filter support,
// corner-mask range). CornerAll is clamped to the design's corners.
func (s *snapshot) normalize(q *Query) error {
	if err := q.Normalize(); err != nil {
		return err
	}
	if q.FilterCapture && int(q.CaptureFF) >= s.d.NumFFs() {
		return qerr.Invalid("FF id %d out of range", q.CaptureFF)
	}
	if !s.filter.Empty() && q.Algorithm != AlgoLCA {
		return qerr.Invalid("false-path constraints are supported by AlgoLCA only, got %v", q.Algorithm)
	}
	if q.Corners == CornerAll {
		q.Corners = s.fullMask()
	} else if bad := q.Corners &^ s.fullMask(); bad != 0 {
		return qerr.Invalid("corner mask %#x selects corners beyond the design's %d", uint64(q.Corners), s.numCorners())
	}
	if q.CRPR == CRPRDefault {
		q.CRPR = crprSettingOf(s.crprDefault)
	}
	if q.CRPR == CRPRSameTransition {
		s.ctr.crprSameTransition.Add(1)
	}
	return nil
}

// coreOpts translates a normalized query into engine options, attaching
// the snapshot's false-path filter.
func (s *snapshot) coreOpts(q Query) core.Options {
	copts := core.Options{
		K:             q.K,
		Mode:          q.Mode,
		Threads:       q.Threads,
		UseLiftingLCA: q.UseLiftingLCA,
		IncludePOs:    q.IncludePOs,
		FilterCapture: q.FilterCapture,
		CaptureFF:     q.CaptureFF,
		CRPR:          q.CRPR.mode(),
		DenseKernel:   q.DenseKernel,
	}
	if !s.filter.Empty() {
		copts.ExcludeLaunchFF = s.filter.FromFF
		copts.ExcludeCaptureFF = s.filter.ToFF
		copts.ExcludeLaunchPin = s.filter.FromPin
	}
	return copts
}

// runOn executes one normalized query against one corner's engines,
// with the panic containment and cancellation semantics documented on
// Timer.Run. A non-nil tc marks the call as an executor task: AlgoLCA
// spawns its candidate-generation jobs as stealable tasks on tc's pool
// instead of private goroutines, so concurrent units share the worker
// budget instead of oversubscribing it.
func (s *snapshot) runOn(ctx context.Context, q Query, ce *cornerEngines, tc *sched.TC) (rep Report, err error) {
	// Contain panics on the caller's goroutine too (single-threaded
	// algorithms, reconstruction): one poisoned query must not crash a
	// process serving many.
	defer func() {
		if r := recover(); r != nil {
			rep, err = Report{}, qerr.FromPanic("cppr.Report", r)
		}
	}()
	if err := qerr.FromContext(ctx); err != nil {
		return Report{}, err
	}
	start := time.Now()
	rep = Report{Algorithm: q.Algorithm}
	switch q.Algorithm {
	case AlgoLCA:
		copts := s.coreOpts(q)
		copts.Exec = tc
		var res core.Result
		var rerr error
		if s.jobMemoEligible(q) && ce.cache != nil {
			// Memoized path: per-job results cached on this corner's
			// engines, revalidated against the edit journal, merged to a
			// report byte-identical to the uncached run. Entries dirtied
			// by an edit are served by patching their retained
			// propagation when possible; entries carried clean across an
			// edit (cone provably disjoint) count as cone skips.
			res, rerr = ce.engine.TopPathsMemo(ctx, copts, core.MemoCtx{
				Cache:   ce.cache,
				Seq:     s.seq,
				Journal: s.journal,
				Corner:  ce.corner,
				Valid: func(entrySeq uint64, cone *model.PinSet) bool {
					if s.journal.DirtySince(entrySeq, ce.corner, cone) {
						return false
					}
					if entrySeq < s.seq {
						s.ctr.coneSkips.Add(1)
					}
					return true
				},
			})
		} else {
			res, rerr = ce.engine.TopPaths(ctx, copts)
		}
		if rerr != nil {
			return Report{}, rerr
		}
		rep.Paths, rep.Stats = res.Paths, res.Stats
	case AlgoPairwise:
		paths, err := ce.pw.TopPathsCRPR(ctx, q.Mode, q.CRPR.mode(), q.K, q.Threads)
		if err != nil {
			return Report{}, err
		}
		rep.Paths = paths
	case AlgoBlockwise:
		paths, degraded, err := ce.bw.TopPathsCRPR(ctx, q.Mode, q.CRPR.mode(), q.K, q.Threads)
		if err != nil {
			return Report{}, err
		}
		rep.Paths, rep.Degraded = paths, degraded
	case AlgoBranchAndBound:
		paths, degraded, err := ce.bb.TopPathsCRPR(ctx, q.Mode, q.CRPR.mode(), q.K, q.Threads)
		if err != nil {
			return Report{}, err
		}
		rep.Paths, rep.Degraded = paths, degraded
	case AlgoBruteForce:
		paths, err := baseline.BruteForceCRPR(ctx, ce.d, q.Mode, q.CRPR.mode(), q.K)
		if err != nil {
			return Report{}, err
		}
		rep.Paths = paths
	default: // AlgoRerankInexact; Normalize rejected everything else
		paths, err := ce.rr.TopPathsCRPR(ctx, q.Mode, q.CRPR.mode(), q.K)
		if err != nil {
			return Report{}, err
		}
		rep.Paths = paths
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// run executes one normalized query: the single-corner fast path goes
// straight to that corner's engines; a multi-corner query fans its
// corners out over a work-stealing pool sized by the parallelism budget
// and merges into the worst-corner report.
func (s *snapshot) run(ctx context.Context, q Query, par Parallelism) (Report, error) {
	if c, ok := q.Corners.single(); ok {
		rep, err := s.execute(ctx, q, c, nil)
		if err != nil {
			return Report{}, err
		}
		rep.Corner, rep.Corners = c, q.Corners
		return rep, nil
	}
	start := time.Now()
	corners := q.Corners.List()
	reps := make([]Report, len(corners))
	errs := make([]error, len(corners))
	if w := par.workers(); w > 1 {
		pool := sched.New(w)
		g := pool.NewGroup()
		for i, c := range corners {
			i, c := i, c
			g.Spawn(func(tc *sched.TC) {
				reps[i], errs[i] = s.execute(ctx, q, c, tc)
			})
		}
		g.Wait(nil)
		pool.Close()
	} else {
		for i, c := range corners {
			reps[i], errs[i] = s.execute(ctx, q, c, nil)
		}
	}
	for _, err := range errs {
		if err != nil {
			return Report{}, err
		}
	}
	rep := mergeCornerReports(corners, reps, q.K)
	rep.Corners = q.Corners
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// runWith is run for a normalized query already inside an executor
// task: corners execute sequentially on the calling worker, and a
// non-nil tc lets each corner's candidate jobs spawn as stealable
// subtasks on the shared pool instead of private goroutines — the
// admission path that lets many forked timers' queries share one
// worker budget (see Timer.WhatIf).
func (s *snapshot) runWith(ctx context.Context, q Query, tc *sched.TC) (Report, error) {
	if c, ok := q.Corners.single(); ok {
		rep, err := s.execute(ctx, q, c, tc)
		if err != nil {
			return Report{}, err
		}
		rep.Corner, rep.Corners = c, q.Corners
		return rep, nil
	}
	start := time.Now()
	corners := q.Corners.List()
	reps := make([]Report, len(corners))
	for i, c := range corners {
		var err error
		if reps[i], err = s.execute(ctx, q, c, tc); err != nil {
			return Report{}, err
		}
	}
	rep := mergeCornerReports(corners, reps, q.K)
	rep.Corners = q.Corners
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Timer answers CPPR queries for one design. Construction preprocesses
// the clock tree once; the Timer is then safe for concurrent use,
// including queries racing edits: every query runs against the immutable
// snapshot current when it started, and SetArcDelay / SetBudgets /
// ApplySDC build a new snapshot and publish it atomically. A query in
// flight across an edit observes the design either entirely before or
// entirely after the edit, never a mix.
type Timer struct {
	snap atomic.Pointer[snapshot]
	// par is the installed Parallelism budget (nil means default).
	par atomic.Pointer[Parallelism]
	// mu serializes writers (edits). Readers never take it.
	mu sync.Mutex
}

// NewTimer preprocesses d.
func NewTimer(d *model.Design) *Timer {
	t := &Timer{}
	t.snap.Store(newSnapshot(d, nil, 0, 0, nil, &timerCounters{}, model.CRPRSamePin))
	return t
}

// jobMemoEligible reports whether an AlgoLCA query may use the
// candidate-job cache. Capture filtering and false-path exclusions
// change job outputs but are not part of the cache key, and queries
// beyond MemoMaxK would make entries arbitrarily large, so those run
// uncached; Query.NoCache opts out explicitly (verification/ablation).
func (s *snapshot) jobMemoEligible(q Query) bool {
	return !q.NoCache && !q.FilterCapture && s.filter.Empty() && q.K <= core.MemoMaxK
}

// Design returns the design of the current snapshot. After SetArcDelay
// edits this is a copy-on-write descendant of the design the Timer was
// built with — the original is never mutated.
func (t *Timer) Design() *model.Design { return t.snap.Load().d }

// Run executes one query. Cancellation or deadline expiry — the
// caller's, or the query's own Timeout — aborts it with bounded latency
// and returns an error matching ErrCanceled / ErrDeadlineExceeded; a
// panic anywhere in the query path is contained and returned as an
// *InternalError (the Timer stays usable); a budgeted baseline that
// exhausts its budget returns the paths found so far with
// Report.Degraded set. An invalid query returns an error matching
// ErrInvalidQuery.
func (t *Timer) Run(ctx context.Context, q Query) (Report, error) {
	s := t.snap.Load()
	if err := s.normalize(&q); err != nil {
		return Report{}, err
	}
	par := t.Parallelism()
	q.Threads = par.threadsFor(q)
	if q.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.Timeout)
		defer cancel()
	}
	rep, err := s.run(ctx, q, par)
	if err == nil && rep.Degraded {
		s.ctr.servedDegraded.Add(1)
	}
	return rep, err
}

// SetBudgets overrides the failure budgets of the budgeted baselines:
// maxTuples bounds Blockwise's launch-set memory (its "MLE" limit) and
// maxPops bounds BranchAndBound's search. Zero leaves a budget
// unchanged. Like all edits it publishes a new snapshot; queries in
// flight keep the budgets they started with.
func (t *Timer) SetBudgets(maxTuples, maxPops int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.snap.Load()
	nb := *s.base
	if maxTuples > 0 {
		nb.bw = s.base.bw.Rebind(s.d)
		nb.bw.MaxTuples = maxTuples
	}
	if maxPops > 0 {
		nb.bb = s.base.bb.Rebind(s.d)
		nb.bb.MaxPops = maxPops
	}
	ns := *s
	ns.base = &nb
	// Extra-corner baselines copy the base budgets at build time, so
	// already-built slots are stale: hand out fresh lazy slots.
	ns.extra = freshSlots(len(s.extra))
	t.snap.Store(&ns)
}

// EndpointSlack is an endpoint slack at one FF's D pin. Corner is the
// delay corner the slack was computed at; for a multi-corner sweep it
// is the critical corner of that endpoint.
type EndpointSlack struct {
	FF     model.FFID
	Slack  model.Time
	Valid  bool
	Corner model.Corner
}

// PreCPPRSlacks returns the conventional (pre-CPPR) graph-based endpoint
// slacks for the mode at the base corner — the numbers a timer without
// pessimism removal would report, used to quantify removed pessimism.
// The arrival windows are maintained incrementally across SetArcDelay
// edits and shared by every query on the same snapshot.
func (t *Timer) PreCPPRSlacks(mode model.Mode) []EndpointSlack {
	out, _ := t.PreCPPRSlacksAt(model.BaseCorner, mode)
	return out
}

// PreCPPRSlacksAt is PreCPPRSlacks at one delay corner. For extra
// corners the arrival windows come from that corner's engines, built on
// first use and cached on the snapshot.
func (t *Timer) PreCPPRSlacksAt(c model.Corner, mode model.Mode) ([]EndpointSlack, error) {
	s := t.snap.Load()
	if c < 0 || int(c) >= s.numCorners() {
		return nil, qerr.Invalid("corner %d out of range (design has %d corners)", int32(c), s.numCorners())
	}
	ce := s.corner(c)
	raw := sta.EndpointSlacks(ce.d, ce.pre.AT(), mode)
	out := make([]EndpointSlack, len(raw))
	for i, sl := range raw {
		out[i] = EndpointSlack{FF: sl.FF, Slack: sl.Slack, Valid: sl.Valid, Corner: c}
	}
	return out, nil
}

// SetArcDelay performs a what-if edit: it publishes a new snapshot whose
// design has the delay window of the arc from -> to updated, refreshing
// derived state incrementally (graph arrivals via dirty-cone
// propagation; clock-tree credits and launch-arc caches only when the
// edit touches them). The caller's original design is never mutated —
// the snapshot's design is a copy-on-write clone. Subsequent queries
// reflect the edit exactly, with results identical to a freshly built
// Timer on the edited design; queries already in flight complete on the
// pre-edit snapshot.
func (t *Timer) SetArcDelay(from, to model.PinID, delay model.Window) error {
	return t.SetArcDelayAt(model.BaseCorner, from, to, delay)
}

// SetArcDelayAt is SetArcDelay at one delay corner. Corners are
// independent, complete delay sets: editing one corner never perturbs
// the timing of any other, and only the edited corner's derived state
// is invalidated (for an extra corner, its engines rebuild lazily on
// the next query that selects it).
//
// In hierarchical mode (NewHierTimer) from and to address the FLAT
// design: an edit on a kept arc forwards to the reduced graph, and an
// edit inside an extracted block re-extracts only that block's
// macromodel at the edited corner, journaling the changed boundary
// windows.
func (t *Timer) SetArcDelayAt(c model.Corner, from, to model.PinID, delay model.Window) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.snap.Load().hier != nil {
		return t.setArcDelayAtHierLocked(c, from, to, delay)
	}
	return t.setArcDelayAtLocked(c, from, to, delay)
}

// setArcDelayAtLocked applies an edit addressed in the snapshot
// design's own pin space (the reduced design, in hierarchical mode).
// Caller holds t.mu.
func (t *Timer) setArcDelayAtLocked(c model.Corner, from, to model.PinID, delay model.Window) error {
	s := t.snap.Load()
	if c < 0 || int(c) >= s.numCorners() {
		return fmt.Errorf("cppr: corner %d out of range (design has %d corners)", int32(c), s.numCorners())
	}
	ai := s.d.ArcBetween(from, to)
	if ai < 0 {
		return fmt.Errorf("cppr: no arc %q -> %q", s.d.PinName(from), s.d.PinName(to))
	}
	if c != model.BaseCorner {
		nd, err := s.d.WithArcDelayAt(c, ai, delay)
		if err != nil {
			return err
		}
		ns := *s
		ns.d = nd
		ns.extra = make([]*lazyCorner, len(s.extra))
		copy(ns.extra, s.extra)
		// The fresh slot rebuilds the corner's engines — job cache
		// included — on next use; every other corner's caches stay
		// live. The edit is journaled so the carried query memo can
		// invalidate exactly the edited corner's reports (other
		// corners' entries survive as cone skips).
		ns.extra[c-1] = &lazyCorner{}
		journal := s.journal.Append(c, from, to)
		ns.journal, ns.seq = journal, journal.Seq()
		t.snap.Store(&ns)
		return nil
	}
	nd := s.d.CloneWithArcs()
	pre := s.base.pre.CloneFor(nd)
	if err := pre.SetArcDelay(ai, delay); err != nil {
		return err
	}
	pre.Flush()
	var ns *snapshot
	if s.d.IsClockPin(from) {
		// Clock arcs change arrivals/credits cached in the lca tree;
		// CK->Q edits change the launch-delay caches inside each engine.
		// Full rebuild on the edited design, preserving budgets. The
		// fresh base tree has its own shape, so extra corners rebuild
		// too rather than mixing shapes within one snapshot. The fresh
		// snapshot also drops every memo and resets the edit journal:
		// clock-path changes are outside the cone-invalidation model.
		ns = newSnapshot(nd, s.filter, s.base.bw.MaxTuples, s.base.bb.MaxPops, pre, s.ctr, s.crprDefault)
		ns.hier = s.hier
	} else {
		ns = s.rebind(nd, pre, from, to)
	}
	t.snap.Store(ns)
	return nil
}

// ApplySDC applies a constraint set: the clock period and io-delay
// overrides rebuild the timer's design, and false-path exceptions are
// installed as a candidate filter consulted by subsequent AlgoLCA
// queries. The rebuilt design is returned (the new snapshot uses it).
func (t *Timer) ApplySDC(c *sdc.Constraints) (*model.Design, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.snap.Load()
	if s.hier != nil {
		// Hierarchical mode: constraints transform the flat design and
		// the result is re-elaborated (see hier.go).
		return t.applySDCHierLocked(s, c)
	}
	nd, filt, err := c.Apply(s.d)
	if err != nil {
		return nil, err
	}
	// An unstated set_crpr_mode keeps the previously installed default.
	crpr := s.crprDefault
	if c.CRPRSet {
		crpr = c.CRPR
	}
	t.noteSDCKnobs(s, c)
	// Constraints change slacks globally (period, io delays, derates,
	// filter), so the fresh snapshot drops every cache: job caches, query
	// memo, and the edit journal all start over. Apply itself carries the
	// extra-corner delay tables (transformed like the base corner) onto
	// the rebuilt design.
	t.snap.Store(newSnapshot(nd, filt, s.base.bw.MaxTuples, s.base.bb.MaxPops, nil, s.ctr, crpr))
	return nd, nil
}

// noteSDCKnobs bumps the signoff-knob usage counters for one ApplySDC.
func (t *Timer) noteSDCKnobs(s *snapshot, c *sdc.Constraints) {
	if c.HasUncertainty[model.Setup] || c.HasUncertainty[model.Hold] {
		s.ctr.sdcUncertainty.Add(1)
	}
	if c.HasDerate() {
		s.ctr.sdcDerate.Add(1)
	}
	if c.Ideal {
		s.ctr.sdcIdealClock.Add(1)
	}
	if len(c.InputDelay)+len(c.OutputDelay) > 0 {
		s.ctr.sdcIODelay.Add(1)
	}
	if c.CRPRSet {
		s.ctr.sdcCRPRMode.Add(1)
	}
}

// PostCPPRSlacksCtx computes the exact post-CPPR worst slack at every FF
// endpoint in O(nD) — a full pessimism-removed signoff summary (compare
// PreCPPRSlacks to quantify removed pessimism per endpoint). The query's
// Mode, Threads, Corners and capture filter are honoured; K and
// Algorithm are ignored (the sweep always runs on the LCA engine). A
// multi-corner query sweeps every selected corner — spread over the
// executor pool under the Timer's Parallelism budget — and merges to the
// pointwise worst (minimum) slack per endpoint, recording each test's
// critical corner. Cancellation and panic containment follow Run.
func (t *Timer) PostCPPRSlacksCtx(ctx context.Context, q Query) (out []EndpointSlack, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, qerr.FromPanic("cppr.PostCPPRSlacks", r)
		}
	}()
	s := t.snap.Load()
	q.Algorithm = AlgoLCA
	if err := s.normalize(&q); err != nil {
		return nil, err
	}
	par := t.Parallelism()
	q.Threads = par.threadsFor(q)
	corners := q.Corners.List()
	byCorner := make([][]sta.EndpointSlack, len(corners))
	errs := make([]error, len(corners))
	sweep := func(i int, c model.Corner, tc *sched.TC) {
		copts := s.coreOpts(q)
		copts.Exec = tc
		raw, err := s.corner(c).engine.EndpointSlacksCPPR(ctx, copts)
		if err != nil {
			errs[i] = err
			return
		}
		conv := make([]sta.EndpointSlack, len(raw))
		for j, sl := range raw {
			conv[j] = sta.EndpointSlack{FF: sl.FF, Slack: sl.Slack, Valid: sl.Valid, Corner: c}
		}
		byCorner[i] = conv
	}
	if w := par.workers(); len(corners) > 1 && w > 1 {
		pool := sched.New(w)
		g := pool.NewGroup()
		for i, c := range corners {
			i, c := i, c
			g.Spawn(func(tc *sched.TC) { sweep(i, c, tc) })
		}
		g.Wait(nil)
		pool.Close()
	} else {
		for i, c := range corners {
			sweep(i, c, nil)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := sta.MergeWorstSlacks(corners, byCorner)
	out = make([]EndpointSlack, len(merged))
	for i, sl := range merged {
		out[i] = EndpointSlack{FF: sl.FF, Slack: sl.Slack, Valid: sl.Valid, Corner: sl.Corner}
	}
	return out, nil
}
