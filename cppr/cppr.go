// Package cppr is the public facade of fastcppr: a common-path-pessimism-
// removal (CPPR) timing engine that reports the top-k post-CPPR critical
// paths of a design.
//
// The default algorithm is the DAC 2021 LCA-depth-grouping algorithm of
// Guo, Huang and Lin ("A Provably Good and Practically Efficient Algorithm
// for Common Path Pessimism Removal in Large Designs"), whose runtime is
// O(nD) for the top path and O(nDk log k) for top-k, where D is the clock
// tree depth. Three reimplemented state-of-the-art baselines (OpenTimer-,
// HappyTimer- and iTimerC-style) are selectable for comparison studies;
// all four produce exact, full-accuracy results.
//
// Basic use:
//
//	d, err := tau.ReadFile("design.cppr")
//	t := cppr.NewTimer(d)
//	rep, err := t.Report(cppr.Options{K: 10, Mode: model.Setup})
//	for _, p := range rep.Paths { fmt.Print(p.Format(d)) }
package cppr

import (
	"context"
	"fmt"
	"time"

	"fastcppr/internal/baseline"
	"fastcppr/internal/core"
	"fastcppr/internal/lca"
	"fastcppr/internal/qerr"
	"fastcppr/internal/sta"
	"fastcppr/model"
	"fastcppr/sdc"
)

// Algorithm selects which CPPR implementation answers a query.
type Algorithm int

const (
	// AlgoLCA is the paper's algorithm (default): per-clock-tree-level
	// candidate generation, independent of the FF count.
	AlgoLCA Algorithm = iota
	// AlgoPairwise is the OpenTimer-style per-launch-FF baseline.
	AlgoPairwise
	// AlgoBlockwise is the HappyTimer-style launch-set block baseline.
	AlgoBlockwise
	// AlgoBranchAndBound is the iTimerC-style pre-CPPR-ordered
	// branch-and-bound baseline.
	AlgoBranchAndBound
	// AlgoBruteForce enumerates every path; exponential, for tiny
	// designs and validation only.
	AlgoBruteForce
	// AlgoRerankInexact is the pre-CPPR-then-rerank heuristic: top-k by
	// pre-CPPR slack, credits applied afterwards. It is NOT exact — it
	// can miss true post-CPPR critical paths — and exists to quantify
	// why exact CPPR search matters. Never use it for signoff.
	AlgoRerankInexact
)

// String returns the short name used by CLI flags and reports.
func (a Algorithm) String() string {
	switch a {
	case AlgoLCA:
		return "lca"
	case AlgoPairwise:
		return "pairwise"
	case AlgoBlockwise:
		return "blockwise"
	case AlgoBranchAndBound:
		return "bnb"
	case AlgoBruteForce:
		return "brute"
	case AlgoRerankInexact:
		return "rerank"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a short name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "lca", "ours", "":
		return AlgoLCA, nil
	case "pairwise", "opentimer":
		return AlgoPairwise, nil
	case "blockwise", "happytimer":
		return AlgoBlockwise, nil
	case "bnb", "itimerc":
		return AlgoBranchAndBound, nil
	case "brute":
		return AlgoBruteForce, nil
	case "rerank":
		return AlgoRerankInexact, nil
	default:
		return 0, fmt.Errorf("cppr: unknown algorithm %q (want lca|pairwise|blockwise|bnb|brute)", s)
	}
}

// Algorithms lists all selectable algorithms in report order.
var Algorithms = []Algorithm{AlgoLCA, AlgoPairwise, AlgoBlockwise, AlgoBranchAndBound}

// Options configures one top-k query.
type Options struct {
	// K is the number of post-CPPR critical paths to report (>= 1).
	K int
	// Mode selects setup or hold analysis.
	Mode model.Mode
	// Threads bounds parallelism; <= 0 uses all available cores.
	Threads int
	// Algorithm selects the implementation; default AlgoLCA.
	Algorithm Algorithm
	// UseLiftingLCA switches AlgoLCA's LCA queries to binary lifting
	// (ablation knob; default Euler-tour RMQ).
	UseLiftingLCA bool
	// IncludePOs adds output-check paths at constrained primary outputs
	// (AlgoLCA only; extension beyond the paper).
	IncludePOs bool
}

// Report is the result of one top-k query.
type Report struct {
	// Paths holds up to K paths sorted ascending by post-CPPR slack.
	Paths []model.Path
	// Elapsed is the query wall time.
	Elapsed time.Duration
	// Algorithm is the implementation that produced the report.
	Algorithm Algorithm
	// Stats carries core-engine counters (AlgoLCA only).
	Stats core.Stats
	// Degraded reports that a budgeted baseline (Blockwise MaxTuples,
	// BranchAndBound MaxPops) exhausted its budget and Paths holds only
	// the — individually exact — paths found before truncation; the true
	// top-k may contain paths this report misses. Always false for
	// AlgoLCA, which has no failure budget.
	Degraded bool
}

// WorstSlack returns the most critical reported slack.
func (r *Report) WorstSlack() (model.Time, bool) {
	if len(r.Paths) == 0 {
		return 0, false
	}
	return r.Paths[0].Slack, true
}

// Timer answers CPPR queries for one design. Construction preprocesses
// the clock tree once; the Timer is then safe for concurrent queries.
// SetArcDelay (what-if edits) must not race with in-flight queries.
type Timer struct {
	d      *model.Design
	tree   *lca.Tree
	engine *core.Engine
	pw     *baseline.Pairwise
	bw     *baseline.Blockwise
	bb     *baseline.BranchAndBound
	rr     *baseline.Rerank
	incr   *sta.Incr
	filter *sdc.Filter
}

// NewTimer preprocesses d.
func NewTimer(d *model.Design) *Timer {
	t := &Timer{d: d}
	t.rebuild()
	return t
}

// rebuild refreshes every structure derived from the design's delays
// that is cached across queries (clock-tree arrivals/credits, CK->Q
// delay caches).
func (t *Timer) rebuild() {
	// Preserve each baseline's budget independently: reading t.bb under
	// a t.bw nil-check would crash the first time the two fields ever
	// get out of step (regression test: TestBudgetsSurviveRebuild).
	maxTuples, maxPops := 0, 0
	if t.bw != nil {
		maxTuples = t.bw.MaxTuples
	}
	if t.bb != nil {
		maxPops = t.bb.MaxPops
	}
	tree := lca.New(t.d)
	t.tree = tree
	t.engine = core.NewEngineWithTree(t.d, tree)
	t.pw = baseline.NewPairwise(t.d, tree)
	t.bw = baseline.NewBlockwise(t.d, tree)
	t.bb = baseline.NewBranchAndBound(t.d, tree)
	t.rr = baseline.NewRerank(t.d, tree)
	if maxTuples > 0 {
		t.bw.MaxTuples = maxTuples
	}
	if maxPops > 0 {
		t.bb.MaxPops = maxPops
	}
}

// Design returns the timer's design.
func (t *Timer) Design() *model.Design { return t.d }

// Report runs one top-k query. It is ReportCtx with a background
// context: never canceled, no deadline.
func (t *Timer) Report(opts Options) (Report, error) {
	return t.ReportCtx(context.Background(), opts)
}

// ReportCtx runs one top-k query under a context. Cancellation or
// deadline expiry aborts the query with bounded latency and returns an
// error matching ErrCanceled / ErrDeadlineExceeded; a panic anywhere in
// the query path is contained and returned as an *InternalError (the
// Timer stays usable); a budgeted baseline that exhausts its budget
// returns the paths found so far with Report.Degraded set.
func (t *Timer) ReportCtx(ctx context.Context, opts Options) (rep Report, err error) {
	// Contain panics on the caller's goroutine too (single-threaded
	// algorithms, reconstruction): one poisoned query must not crash a
	// process serving many.
	defer func() {
		if r := recover(); r != nil {
			rep, err = Report{}, qerr.FromPanic("cppr.Report", r)
		}
	}()
	if opts.K < 0 {
		return Report{}, qerr.Invalid("K must be non-negative, got %d", opts.K)
	}
	if !t.filter.Empty() && opts.Algorithm != AlgoLCA {
		return Report{}, qerr.Invalid("false-path constraints are supported by AlgoLCA only, got %v", opts.Algorithm)
	}
	if err := qerr.FromContext(ctx); err != nil {
		return Report{}, err
	}
	start := time.Now()
	rep = Report{Algorithm: opts.Algorithm}
	switch opts.Algorithm {
	case AlgoLCA:
		copts := core.Options{
			K:             opts.K,
			Mode:          opts.Mode,
			Threads:       opts.Threads,
			UseLiftingLCA: opts.UseLiftingLCA,
			IncludePOs:    opts.IncludePOs,
		}
		if !t.filter.Empty() {
			copts.ExcludeLaunchFF = t.filter.FromFF
			copts.ExcludeCaptureFF = t.filter.ToFF
			copts.ExcludeLaunchPin = t.filter.FromPin
		}
		res, err := t.engine.TopPaths(ctx, copts)
		if err != nil {
			return Report{}, err
		}
		rep.Paths, rep.Stats = res.Paths, res.Stats
	case AlgoPairwise:
		paths, err := t.pw.TopPaths(ctx, opts.Mode, opts.K, opts.Threads)
		if err != nil {
			return Report{}, err
		}
		rep.Paths = paths
	case AlgoBlockwise:
		paths, degraded, err := t.bw.TopPaths(ctx, opts.Mode, opts.K, opts.Threads)
		if err != nil {
			return Report{}, err
		}
		rep.Paths, rep.Degraded = paths, degraded
	case AlgoBranchAndBound:
		paths, degraded, err := t.bb.TopPaths(ctx, opts.Mode, opts.K, opts.Threads)
		if err != nil {
			return Report{}, err
		}
		rep.Paths, rep.Degraded = paths, degraded
	case AlgoBruteForce:
		paths, err := baseline.BruteForceCtx(ctx, t.d, opts.Mode, opts.K)
		if err != nil {
			return Report{}, err
		}
		rep.Paths = paths
	case AlgoRerankInexact:
		paths, err := t.rr.TopPathsCtx(ctx, opts.Mode, opts.K)
		if err != nil {
			return Report{}, err
		}
		rep.Paths = paths
	default:
		return Report{}, qerr.Invalid("unknown algorithm %v", opts.Algorithm)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// EndpointReport returns the top-k post-CPPR paths captured by a single
// flip-flop (report_timing -to style). Only the LCA engine serves
// per-endpoint queries; opts.Algorithm must be AlgoLCA (the default).
func (t *Timer) EndpointReport(ff model.FFID, opts Options) (Report, error) {
	return t.EndpointReportCtx(context.Background(), ff, opts)
}

// EndpointReportCtx is EndpointReport under a context, with the same
// cancellation and panic-containment semantics as ReportCtx.
func (t *Timer) EndpointReportCtx(ctx context.Context, ff model.FFID, opts Options) (rep Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = Report{}, qerr.FromPanic("cppr.EndpointReport", r)
		}
	}()
	if opts.Algorithm != AlgoLCA {
		return Report{}, qerr.Invalid("EndpointReport supports AlgoLCA only, got %v", opts.Algorithm)
	}
	if ff < 0 || int(ff) >= t.d.NumFFs() {
		return Report{}, qerr.Invalid("FF id %d out of range", ff)
	}
	start := time.Now()
	res, err := t.engine.TopPaths(ctx, core.Options{
		K:             opts.K,
		Mode:          opts.Mode,
		Threads:       opts.Threads,
		UseLiftingLCA: opts.UseLiftingLCA,
		FilterCapture: true,
		CaptureFF:     ff,
	})
	if err != nil {
		return Report{}, err
	}
	return Report{
		Paths:     res.Paths,
		Stats:     res.Stats,
		Algorithm: AlgoLCA,
		Elapsed:   time.Since(start),
	}, nil
}

// SetBudgets overrides the failure budgets of the budgeted baselines:
// maxTuples bounds Blockwise's launch-set memory (its "MLE" limit) and
// maxPops bounds BranchAndBound's search. Zero leaves a budget unchanged.
func (t *Timer) SetBudgets(maxTuples, maxPops int) {
	if maxTuples > 0 {
		t.bw.MaxTuples = maxTuples
	}
	if maxPops > 0 {
		t.bb.MaxPops = maxPops
	}
}

// EndpointSlack is a pre-CPPR graph-based slack at one FF's D pin.
type EndpointSlack struct {
	FF    model.FFID
	Slack model.Time
	Valid bool
}

// PreCPPRSlacks returns the conventional (pre-CPPR) graph-based endpoint
// slacks for the mode — the numbers a timer without pessimism removal
// would report, used to quantify removed pessimism. Arrival windows are
// maintained incrementally across SetArcDelay edits.
func (t *Timer) PreCPPRSlacks(mode model.Mode) []EndpointSlack {
	if t.incr == nil {
		t.incr = sta.NewIncr(t.d)
	}
	t.incr.Flush()
	raw := sta.EndpointSlacks(t.d, t.incr.AT(), mode)
	out := make([]EndpointSlack, len(raw))
	for i, s := range raw {
		out[i] = EndpointSlack{FF: s.FF, Slack: s.Slack, Valid: s.Valid}
	}
	return out
}

// SetArcDelay performs a what-if edit: it updates the delay window of
// the arc from -> to and incrementally refreshes the timer's cached
// state (graph arrivals via dirty-cone propagation; clock-tree credits
// and launch-arc caches only when the edit touches them). Subsequent
// Report calls reflect the edit exactly; results are identical to a
// freshly built Timer on the edited design.
func (t *Timer) SetArcDelay(from, to model.PinID, delay model.Window) error {
	ai := t.d.ArcBetween(from, to)
	if ai < 0 {
		return fmt.Errorf("cppr: no arc %q -> %q", t.d.PinName(from), t.d.PinName(to))
	}
	if t.incr == nil {
		t.incr = sta.NewIncr(t.d)
	}
	if err := t.incr.SetArcDelay(ai, delay); err != nil {
		return err
	}
	// Clock arcs change arrivals/credits cached in the lca tree; CK->Q
	// edits change the launch-delay caches inside each engine.
	if t.d.IsClockPin(from) {
		t.rebuild()
	}
	return nil
}

// ApplySDC applies a constraint set: the clock period and io-delay
// overrides rebuild the timer's design, and false-path exceptions are
// installed as a candidate filter consulted by subsequent AlgoLCA
// queries. The rebuilt design is returned (the Timer switches to it).
func (t *Timer) ApplySDC(c *sdc.Constraints) (*model.Design, error) {
	nd, filt, err := c.Apply(t.d)
	if err != nil {
		return nil, err
	}
	t.d = nd
	t.incr = nil
	t.rebuild()
	t.filter = filt
	return nd, nil
}

// PostCPPRSlacks returns the exact post-CPPR worst slack at every FF
// endpoint, computed in O(nD) — a full pessimism-removed signoff
// summary (compare PreCPPRSlacks to quantify removed pessimism per
// endpoint). threads <= 0 uses all cores. It is PostCPPRSlacksCtx with
// a background context (which never errors).
func (t *Timer) PostCPPRSlacks(mode model.Mode, threads int) []EndpointSlack {
	out, _ := t.PostCPPRSlacksCtx(context.Background(), mode, threads)
	return out
}

// PostCPPRSlacksCtx is PostCPPRSlacks under a context, with the same
// cancellation and panic-containment semantics as ReportCtx.
func (t *Timer) PostCPPRSlacksCtx(ctx context.Context, mode model.Mode, threads int) (out []EndpointSlack, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, qerr.FromPanic("cppr.PostCPPRSlacks", r)
		}
	}()
	copts := core.Options{Mode: mode, Threads: threads}
	if !t.filter.Empty() {
		copts.ExcludeLaunchFF = t.filter.FromFF
		copts.ExcludeCaptureFF = t.filter.ToFF
		copts.ExcludeLaunchPin = t.filter.FromPin
	}
	raw, err := t.engine.EndpointSlacksCPPR(ctx, copts)
	if err != nil {
		return nil, err
	}
	out = make([]EndpointSlack, len(raw))
	for i, s := range raw {
		out[i] = EndpointSlack{FF: s.FF, Slack: s.Slack, Valid: s.Valid}
	}
	return out, nil
}

// TopPaths is a one-shot convenience for a single query on a design.
func TopPaths(d *model.Design, opts Options) (Report, error) {
	return NewTimer(d).Report(opts)
}
