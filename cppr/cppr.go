// Package cppr is the public facade of fastcppr: a common-path-pessimism-
// removal (CPPR) timing engine that reports the top-k post-CPPR critical
// paths of a design.
//
// The default algorithm is the DAC 2021 LCA-depth-grouping algorithm of
// Guo, Huang and Lin ("A Provably Good and Practically Efficient Algorithm
// for Common Path Pessimism Removal in Large Designs"), whose runtime is
// O(nD) for the top path and O(nDk log k) for top-k, where D is the clock
// tree depth. Three reimplemented state-of-the-art baselines (OpenTimer-,
// HappyTimer- and iTimerC-style) are selectable for comparison studies;
// all four produce exact, full-accuracy results.
//
// Basic use:
//
//	d, err := tau.ReadFile("design.cppr")
//	t := cppr.NewTimer(d)
//	rep, err := t.Run(ctx, cppr.Query{K: 10, Mode: model.Setup})
//	for _, p := range rep.Paths { fmt.Print(p.Format(d)) }
package cppr

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fastcppr/internal/baseline"
	"fastcppr/internal/core"
	"fastcppr/internal/lca"
	"fastcppr/internal/qerr"
	"fastcppr/internal/sta"
	"fastcppr/model"
	"fastcppr/sdc"
)

// Algorithm selects which CPPR implementation answers a query.
type Algorithm int

const (
	// AlgoLCA is the paper's algorithm (default): per-clock-tree-level
	// candidate generation, independent of the FF count.
	AlgoLCA Algorithm = iota
	// AlgoPairwise is the OpenTimer-style per-launch-FF baseline.
	AlgoPairwise
	// AlgoBlockwise is the HappyTimer-style launch-set block baseline.
	AlgoBlockwise
	// AlgoBranchAndBound is the iTimerC-style pre-CPPR-ordered
	// branch-and-bound baseline.
	AlgoBranchAndBound
	// AlgoBruteForce enumerates every path; exponential, for tiny
	// designs and validation only.
	AlgoBruteForce
	// AlgoRerankInexact is the pre-CPPR-then-rerank heuristic: top-k by
	// pre-CPPR slack, credits applied afterwards. It is NOT exact — it
	// can miss true post-CPPR critical paths — and exists to quantify
	// why exact CPPR search matters. Never use it for signoff.
	AlgoRerankInexact
)

// String returns the short name used by CLI flags and reports.
func (a Algorithm) String() string {
	switch a {
	case AlgoLCA:
		return "lca"
	case AlgoPairwise:
		return "pairwise"
	case AlgoBlockwise:
		return "blockwise"
	case AlgoBranchAndBound:
		return "bnb"
	case AlgoBruteForce:
		return "brute"
	case AlgoRerankInexact:
		return "rerank"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a short name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "lca", "ours", "":
		return AlgoLCA, nil
	case "pairwise", "opentimer":
		return AlgoPairwise, nil
	case "blockwise", "happytimer":
		return AlgoBlockwise, nil
	case "bnb", "itimerc":
		return AlgoBranchAndBound, nil
	case "brute":
		return AlgoBruteForce, nil
	case "rerank":
		return AlgoRerankInexact, nil
	default:
		return 0, fmt.Errorf("cppr: unknown algorithm %q (want lca|pairwise|blockwise|bnb|brute|rerank)", s)
	}
}

// Algorithms lists all selectable algorithms in report order.
var Algorithms = []Algorithm{AlgoLCA, AlgoPairwise, AlgoBlockwise, AlgoBranchAndBound}

// Options configures one top-k query through the deprecated entry points
// (Report, ReportCtx, EndpointReport, EndpointReportCtx, TopPaths). New
// code should build a Query and call Timer.Run instead; Query carries
// the same fields plus the capture-endpoint filter.
type Options struct {
	// K is the number of post-CPPR critical paths to report (>= 1).
	K int
	// Mode selects setup or hold analysis.
	Mode model.Mode
	// Threads bounds parallelism; <= 0 uses all available cores.
	Threads int
	// Algorithm selects the implementation; default AlgoLCA.
	Algorithm Algorithm
	// UseLiftingLCA switches AlgoLCA's LCA queries to binary lifting
	// (ablation knob; default Euler-tour RMQ).
	UseLiftingLCA bool
	// IncludePOs adds output-check paths at constrained primary outputs
	// (AlgoLCA only; extension beyond the paper).
	IncludePOs bool
}

// Report is the result of one top-k query.
type Report struct {
	// Paths holds up to K paths sorted ascending by post-CPPR slack.
	Paths []model.Path
	// Elapsed is the query wall time. For a batch-merged query it is the
	// wall time of the shared execution that served it.
	Elapsed time.Duration
	// Algorithm is the implementation that produced the report.
	Algorithm Algorithm
	// Stats carries core-engine counters (AlgoLCA only). For a
	// batch-merged query the counters are those of the shared execution.
	Stats core.Stats
	// Degraded reports that a budgeted baseline (Blockwise MaxTuples,
	// BranchAndBound MaxPops) exhausted its budget and Paths holds only
	// the — individually exact — paths found before truncation; the true
	// top-k may contain paths this report misses. Always false for
	// AlgoLCA, which has no failure budget.
	Degraded bool
}

// WorstSlack returns the most critical reported slack.
func (r *Report) WorstSlack() (model.Time, bool) {
	if len(r.Paths) == 0 {
		return 0, false
	}
	return r.Paths[0].Slack, true
}

// snapshot is one immutable epoch of a Timer: a design plus every
// structure derived from its delays (clock-tree arrivals/credits, CK->Q
// caches, graph-based arrival windows, false-path filter). Queries load
// one snapshot pointer and use only it, so an edit that publishes a new
// snapshot never perturbs queries in flight on the old one.
type snapshot struct {
	d      *model.Design
	tree   *lca.Tree
	engine *core.Engine
	pw     *baseline.Pairwise
	bw     *baseline.Blockwise
	bb     *baseline.BranchAndBound
	rr     *baseline.Rerank
	// pre holds the graph-based (pre-CPPR) arrival windows, maintained
	// incrementally across edits. It is flushed before the snapshot is
	// published and read-only afterwards: the "one early/late
	// propagation per snapshot" all PreCPPRSlacks calls share.
	pre    *sta.Incr
	filter *sdc.Filter
}

// newSnapshot builds a full snapshot for d: clock tree, engines, and —
// unless an up-to-date pre is handed over from the previous epoch — a
// fresh graph-arrival propagation.
func newSnapshot(d *model.Design, filter *sdc.Filter, maxTuples, maxPops int, pre *sta.Incr) *snapshot {
	tree := lca.New(d)
	s := &snapshot{
		d:      d,
		tree:   tree,
		engine: core.NewEngineWithTree(d, tree),
		pw:     baseline.NewPairwise(d, tree),
		bw:     baseline.NewBlockwise(d, tree),
		bb:     baseline.NewBranchAndBound(d, tree),
		rr:     baseline.NewRerank(d, tree),
		pre:    pre,
		filter: filter,
	}
	if s.pre == nil {
		s.pre = sta.NewIncr(d)
	}
	if maxTuples > 0 {
		s.bw.MaxTuples = maxTuples
	}
	if maxPops > 0 {
		s.bb.MaxPops = maxPops
	}
	return s
}

// rebind derives a snapshot for nd without rebuilding the clock tree.
// Valid only when nd differs from s.d in non-clock arc delays: the
// shared lca.Tree (arrivals, credits, level tables) and the budgets
// carried inside the rebound baselines stay correct by construction.
func (s *snapshot) rebind(nd *model.Design, pre *sta.Incr) *snapshot {
	return &snapshot{
		d:      nd,
		tree:   s.tree,
		engine: s.engine.Rebind(nd),
		pw:     s.pw.Rebind(nd),
		bw:     s.bw.Rebind(nd),
		bb:     s.bb.Rebind(nd),
		rr:     s.rr.Rebind(nd),
		pre:    pre,
		filter: s.filter,
	}
}

// normalize validates q against this snapshot: Query.Normalize plus the
// design-dependent checks (CaptureFF range, false-path filter support).
func (s *snapshot) normalize(q *Query) error {
	if err := q.Normalize(); err != nil {
		return err
	}
	if q.FilterCapture && int(q.CaptureFF) >= s.d.NumFFs() {
		return qerr.Invalid("FF id %d out of range", q.CaptureFF)
	}
	if !s.filter.Empty() && q.Algorithm != AlgoLCA {
		return qerr.Invalid("false-path constraints are supported by AlgoLCA only, got %v", q.Algorithm)
	}
	return nil
}

// coreOpts translates a normalized query into engine options, attaching
// the snapshot's false-path filter.
func (s *snapshot) coreOpts(q Query) core.Options {
	copts := core.Options{
		K:             q.K,
		Mode:          q.Mode,
		Threads:       q.Threads,
		UseLiftingLCA: q.UseLiftingLCA,
		IncludePOs:    q.IncludePOs,
		FilterCapture: q.FilterCapture,
		CaptureFF:     q.CaptureFF,
	}
	if !s.filter.Empty() {
		copts.ExcludeLaunchFF = s.filter.FromFF
		copts.ExcludeCaptureFF = s.filter.ToFF
		copts.ExcludeLaunchPin = s.filter.FromPin
	}
	return copts
}

// run executes one normalized query against this snapshot, with the
// panic containment and cancellation semantics documented on Timer.Run.
func (s *snapshot) run(ctx context.Context, q Query) (rep Report, err error) {
	// Contain panics on the caller's goroutine too (single-threaded
	// algorithms, reconstruction): one poisoned query must not crash a
	// process serving many.
	defer func() {
		if r := recover(); r != nil {
			rep, err = Report{}, qerr.FromPanic("cppr.Report", r)
		}
	}()
	if err := qerr.FromContext(ctx); err != nil {
		return Report{}, err
	}
	start := time.Now()
	rep = Report{Algorithm: q.Algorithm}
	switch q.Algorithm {
	case AlgoLCA:
		res, err := s.engine.TopPaths(ctx, s.coreOpts(q))
		if err != nil {
			return Report{}, err
		}
		rep.Paths, rep.Stats = res.Paths, res.Stats
	case AlgoPairwise:
		paths, err := s.pw.TopPaths(ctx, q.Mode, q.K, q.Threads)
		if err != nil {
			return Report{}, err
		}
		rep.Paths = paths
	case AlgoBlockwise:
		paths, degraded, err := s.bw.TopPaths(ctx, q.Mode, q.K, q.Threads)
		if err != nil {
			return Report{}, err
		}
		rep.Paths, rep.Degraded = paths, degraded
	case AlgoBranchAndBound:
		paths, degraded, err := s.bb.TopPaths(ctx, q.Mode, q.K, q.Threads)
		if err != nil {
			return Report{}, err
		}
		rep.Paths, rep.Degraded = paths, degraded
	case AlgoBruteForce:
		paths, err := baseline.BruteForceCtx(ctx, s.d, q.Mode, q.K)
		if err != nil {
			return Report{}, err
		}
		rep.Paths = paths
	default: // AlgoRerankInexact; Normalize rejected everything else
		paths, err := s.rr.TopPathsCtx(ctx, q.Mode, q.K)
		if err != nil {
			return Report{}, err
		}
		rep.Paths = paths
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Timer answers CPPR queries for one design. Construction preprocesses
// the clock tree once; the Timer is then safe for concurrent use,
// including queries racing edits: every query runs against the immutable
// snapshot current when it started, and SetArcDelay / SetBudgets /
// ApplySDC build a new snapshot and publish it atomically. A query in
// flight across an edit observes the design either entirely before or
// entirely after the edit, never a mix.
type Timer struct {
	snap atomic.Pointer[snapshot]
	// mu serializes writers (edits). Readers never take it.
	mu sync.Mutex
}

// NewTimer preprocesses d.
func NewTimer(d *model.Design) *Timer {
	t := &Timer{}
	t.snap.Store(newSnapshot(d, nil, 0, 0, nil))
	return t
}

// Design returns the design of the current snapshot. After SetArcDelay
// edits this is a copy-on-write descendant of the design the Timer was
// built with — the original is never mutated.
func (t *Timer) Design() *model.Design { return t.snap.Load().d }

// Run executes one query. Cancellation or deadline expiry aborts it with
// bounded latency and returns an error matching ErrCanceled /
// ErrDeadlineExceeded; a panic anywhere in the query path is contained
// and returned as an *InternalError (the Timer stays usable); a budgeted
// baseline that exhausts its budget returns the paths found so far with
// Report.Degraded set. An invalid query returns an error matching
// ErrInvalidQuery.
func (t *Timer) Run(ctx context.Context, q Query) (Report, error) {
	s := t.snap.Load()
	if err := s.normalize(&q); err != nil {
		return Report{}, err
	}
	return s.run(ctx, q)
}

// Report runs one top-k query with a background context.
//
// Deprecated: use Run with a Query.
func (t *Timer) Report(opts Options) (Report, error) {
	return t.Run(context.Background(), opts.query())
}

// ReportCtx runs one top-k query under a context.
//
// Deprecated: use Run with a Query.
func (t *Timer) ReportCtx(ctx context.Context, opts Options) (Report, error) {
	return t.Run(ctx, opts.query())
}

// EndpointReport returns the top-k post-CPPR paths captured by a single
// flip-flop (report_timing -to style).
//
// Deprecated: use Run with a Query whose FilterCapture/CaptureFF fields
// select the endpoint.
func (t *Timer) EndpointReport(ff model.FFID, opts Options) (Report, error) {
	return t.EndpointReportCtx(context.Background(), ff, opts)
}

// EndpointReportCtx is EndpointReport under a context.
//
// Deprecated: use Run with a Query whose FilterCapture/CaptureFF fields
// select the endpoint.
func (t *Timer) EndpointReportCtx(ctx context.Context, ff model.FFID, opts Options) (Report, error) {
	q := opts.query()
	q.FilterCapture, q.CaptureFF = true, ff
	return t.Run(ctx, q)
}

// SetBudgets overrides the failure budgets of the budgeted baselines:
// maxTuples bounds Blockwise's launch-set memory (its "MLE" limit) and
// maxPops bounds BranchAndBound's search. Zero leaves a budget
// unchanged. Like all edits it publishes a new snapshot; queries in
// flight keep the budgets they started with.
func (t *Timer) SetBudgets(maxTuples, maxPops int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.snap.Load()
	ns := *s
	if maxTuples > 0 {
		ns.bw = s.bw.Rebind(s.d)
		ns.bw.MaxTuples = maxTuples
	}
	if maxPops > 0 {
		ns.bb = s.bb.Rebind(s.d)
		ns.bb.MaxPops = maxPops
	}
	t.snap.Store(&ns)
}

// EndpointSlack is a pre-CPPR graph-based slack at one FF's D pin.
type EndpointSlack struct {
	FF    model.FFID
	Slack model.Time
	Valid bool
}

// PreCPPRSlacks returns the conventional (pre-CPPR) graph-based endpoint
// slacks for the mode — the numbers a timer without pessimism removal
// would report, used to quantify removed pessimism. The arrival windows
// are maintained incrementally across SetArcDelay edits and shared by
// every query on the same snapshot.
func (t *Timer) PreCPPRSlacks(mode model.Mode) []EndpointSlack {
	s := t.snap.Load()
	raw := sta.EndpointSlacks(s.d, s.pre.AT(), mode)
	out := make([]EndpointSlack, len(raw))
	for i, sl := range raw {
		out[i] = EndpointSlack{FF: sl.FF, Slack: sl.Slack, Valid: sl.Valid}
	}
	return out
}

// SetArcDelay performs a what-if edit: it publishes a new snapshot whose
// design has the delay window of the arc from -> to updated, refreshing
// derived state incrementally (graph arrivals via dirty-cone
// propagation; clock-tree credits and launch-arc caches only when the
// edit touches them). The caller's original design is never mutated —
// the snapshot's design is a copy-on-write clone. Subsequent queries
// reflect the edit exactly, with results identical to a freshly built
// Timer on the edited design; queries already in flight complete on the
// pre-edit snapshot.
func (t *Timer) SetArcDelay(from, to model.PinID, delay model.Window) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.snap.Load()
	ai := s.d.ArcBetween(from, to)
	if ai < 0 {
		return fmt.Errorf("cppr: no arc %q -> %q", s.d.PinName(from), s.d.PinName(to))
	}
	nd := s.d.CloneWithArcs()
	pre := s.pre.CloneFor(nd)
	if err := pre.SetArcDelay(ai, delay); err != nil {
		return err
	}
	pre.Flush()
	var ns *snapshot
	if s.d.IsClockPin(from) {
		// Clock arcs change arrivals/credits cached in the lca tree;
		// CK->Q edits change the launch-delay caches inside each engine.
		// Full rebuild on the edited design, preserving budgets.
		ns = newSnapshot(nd, s.filter, s.bw.MaxTuples, s.bb.MaxPops, pre)
	} else {
		ns = s.rebind(nd, pre)
	}
	t.snap.Store(ns)
	return nil
}

// ApplySDC applies a constraint set: the clock period and io-delay
// overrides rebuild the timer's design, and false-path exceptions are
// installed as a candidate filter consulted by subsequent AlgoLCA
// queries. The rebuilt design is returned (the new snapshot uses it).
func (t *Timer) ApplySDC(c *sdc.Constraints) (*model.Design, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.snap.Load()
	nd, filt, err := c.Apply(s.d)
	if err != nil {
		return nil, err
	}
	t.snap.Store(newSnapshot(nd, filt, s.bw.MaxTuples, s.bb.MaxPops, nil))
	return nd, nil
}

// PostCPPRSlacks returns the exact post-CPPR worst slack at every FF
// endpoint for the mode; threads <= 0 uses all cores.
//
// Deprecated: use PostCPPRSlacksCtx with a Query.
func (t *Timer) PostCPPRSlacks(mode model.Mode, threads int) []EndpointSlack {
	out, _ := t.PostCPPRSlacksCtx(context.Background(), Query{Mode: mode, Threads: threads})
	return out
}

// PostCPPRSlacksCtx computes the exact post-CPPR worst slack at every FF
// endpoint in O(nD) — a full pessimism-removed signoff summary (compare
// PreCPPRSlacks to quantify removed pessimism per endpoint). The query's
// Mode, Threads and capture filter are honoured; K and Algorithm are
// ignored (the sweep always runs on the LCA engine). Cancellation and
// panic containment follow Run.
func (t *Timer) PostCPPRSlacksCtx(ctx context.Context, q Query) (out []EndpointSlack, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, qerr.FromPanic("cppr.PostCPPRSlacks", r)
		}
	}()
	s := t.snap.Load()
	q.Algorithm = AlgoLCA
	if err := s.normalize(&q); err != nil {
		return nil, err
	}
	raw, err := s.engine.EndpointSlacksCPPR(ctx, s.coreOpts(q))
	if err != nil {
		return nil, err
	}
	out = make([]EndpointSlack, len(raw))
	for i, sl := range raw {
		out[i] = EndpointSlack{FF: sl.FF, Slack: sl.Slack, Valid: sl.Valid}
	}
	return out, nil
}

// TopPaths is a one-shot convenience for a single query on a design.
//
// Deprecated: build a Timer and call Run with a Query.
func TopPaths(d *model.Design, opts Options) (Report, error) {
	return NewTimer(d).Run(context.Background(), opts.query())
}
