package cppr

import (
	"errors"
	"strings"
	"testing"

	"fastcppr/model"
)

// TestParseAlgorithmRoundTrip pins that every accepted name parses to an
// algorithm whose String() parses back to the same algorithm, and that
// the canonical name round-trips exactly.
func TestParseAlgorithmRoundTrip(t *testing.T) {
	names := []string{"lca", "ours", "", "pairwise", "opentimer",
		"blockwise", "happytimer", "bnb", "itimerc", "brute", "rerank"}
	for _, name := range names {
		a, err := ParseAlgorithm(name)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", name, err)
		}
		back, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q.String()=%q): %v", name, a.String(), err)
		}
		if back != a {
			t.Errorf("round trip %q -> %v -> %q -> %v", name, a, a.String(), back)
		}
	}
	// Every defined algorithm's canonical name must parse.
	for _, a := range []Algorithm{AlgoLCA, AlgoPairwise, AlgoBlockwise,
		AlgoBranchAndBound, AlgoBruteForce, AlgoRerankInexact} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%v.String()) = %v, %v", a, got, err)
		}
	}
}

// TestParseAlgorithmErrorListsAllNames is the regression test for the
// "want ..." list: it must mention every accepted canonical name,
// including rerank (once omitted).
func TestParseAlgorithmErrorListsAllNames(t *testing.T) {
	_, err := ParseAlgorithm("nope")
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	for _, name := range []string{"lca", "pairwise", "blockwise", "bnb", "brute", "rerank"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestQueryNormalize(t *testing.T) {
	cases := []struct {
		name    string
		in      Query
		wantErr bool
		want    Query // compared only when wantErr is false
	}{
		{name: "zero value", in: Query{}, want: Query{Corners: CornerBit(0)}},
		{name: "negative K", in: Query{K: -1}, wantErr: true},
		{name: "unknown algorithm", in: Query{Algorithm: Algorithm(42)}, wantErr: true},
		{name: "negative threads clamped", in: Query{K: 1, Threads: -3},
			want: Query{K: 1, Corners: CornerBit(0)}},
		{name: "ignored CaptureFF cleared", in: Query{K: 1, CaptureFF: 7},
			want: Query{K: 1, Corners: CornerBit(0)}},
		{name: "capture filter kept", in: Query{K: 1, FilterCapture: true, CaptureFF: 7},
			want: Query{K: 1, FilterCapture: true, CaptureFF: 7, Corners: CornerBit(0)}},
		{name: "capture filter on non-LCA",
			in: Query{K: 1, Algorithm: AlgoPairwise, FilterCapture: true}, wantErr: true},
		{name: "negative CaptureFF",
			in: Query{K: 1, FilterCapture: true, CaptureFF: -1}, wantErr: true},
		{name: "full query unchanged",
			in:   Query{K: 9, Mode: model.Hold, Threads: 2, Algorithm: AlgoBlockwise, IncludePOs: true},
			want: Query{K: 9, Mode: model.Hold, Threads: 2, Algorithm: AlgoBlockwise, IncludePOs: true, Corners: CornerBit(0)}},
		{name: "corner mask kept",
			in:   Query{K: 1, Corners: CornerBit(2) | CornerBit(0)},
			want: Query{K: 1, Corners: CornerBit(2) | CornerBit(0)}},
		{name: "corner-all kept for query-time clamping",
			in:   Query{K: 1, Corners: CornerAll},
			want: Query{K: 1, Corners: CornerAll}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.in
			err := q.Normalize()
			if tc.wantErr {
				if !errors.Is(err, ErrInvalidQuery) {
					t.Fatalf("err = %v, want ErrInvalidQuery", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if q != tc.want {
				t.Errorf("normalized %+v, want %+v", q, tc.want)
			}
		})
	}
}
