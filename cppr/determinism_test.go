package cppr_test

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"fastcppr/cppr"
	"fastcppr/model"
)

// reportBytes serialises a report to its JSON form with the wall-time
// field zeroed — the only field allowed to vary between identical runs.
func reportBytes(t *testing.T, d *model.Design, rep cppr.Report, mode model.Mode, k int) []byte {
	t.Helper()
	rep.Elapsed = 0
	var buf bytes.Buffer
	if err := cppr.WriteJSON(&buf, d, &rep, mode, k); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunDeterministicJSON pins down the determinism contract: the same
// query run twice, and run single-threaded versus with all cores, must
// produce byte-identical JSON reports — slacks are fixed-point
// picoseconds and every tie-break is by stable ids, so nothing may
// depend on scheduling. Checked single- and multi-corner.
func TestRunDeterministicJSON(t *testing.T) {
	d := mcmmDesign(t, 600, 3)
	timer := cppr.NewTimer(d)
	ctx := context.Background()
	threads := runtime.GOMAXPROCS(0)
	if threads < 4 {
		// Force a multi-worker run even on small CI boxes: determinism
		// across worker counts is the property under test.
		threads = 4
	}
	const k = 50
	for _, corners := range []cppr.CornerMask{cppr.CornerBit(0), cppr.CornerAll} {
		for _, mode := range model.Modes {
			q1 := cppr.Query{K: k, Mode: mode, Threads: 1, Corners: corners}
			qN := cppr.Query{K: k, Mode: mode, Threads: threads, Corners: corners}
			runOnce := func(q cppr.Query) []byte {
				rep, err := timer.Run(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				return reportBytes(t, d, rep, mode, k)
			}
			a, b := runOnce(q1), runOnce(q1)
			if !bytes.Equal(a, b) {
				t.Fatalf("corners %#x %v: two identical runs differ:\n%s\n---\n%s", uint64(corners), mode, a, b)
			}
			c := runOnce(qN)
			if !bytes.Equal(a, c) {
				t.Fatalf("corners %#x %v: Threads=1 and Threads=%d differ:\n%s\n---\n%s",
					uint64(corners), mode, threads, a, c)
			}
		}
	}
}

// TestBatchDeterministicJSON extends the contract to ReportBatch: a
// batch of mixed single- and multi-corner queries serialises
// byte-identically across repeated executions, regardless of how the
// worker pool interleaves the shared execution units.
func TestBatchDeterministicJSON(t *testing.T) {
	d := mcmmDesign(t, 601, 3)
	timer := cppr.NewTimer(d)
	ctx := context.Background()
	queries := []cppr.Query{
		{K: 25, Mode: model.Setup, Corners: cppr.CornerAll},
		{K: 10, Mode: model.Hold, Corners: cppr.CornerBit(1)},
		{K: 25, Mode: model.Setup},
		{K: 5, Mode: model.Hold, Corners: cppr.CornerBit(0) | cppr.CornerBit(2)},
	}
	snap := func() [][]byte {
		results, err := timer.ReportBatch(ctx, queries)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("query %d: %v", i, r.Err)
			}
			out[i] = reportBytes(t, d, r.Report, queries[i].Mode, queries[i].K)
		}
		return out
	}
	a, b := snap(), snap()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("query %d: batch runs differ:\n%s\n---\n%s", i, a[i], b[i])
		}
	}
}
