package cppr

import (
	"context"
	"sort"
	"strings"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

func sortedSlacks(paths []model.Path) []model.Time {
	s := make([]model.Time, len(paths))
	for i := range paths {
		s[i] = paths[i].Slack
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func TestAllAlgorithmsAgreeThroughFacade(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(5))
	timer := NewTimer(d)
	for _, mode := range model.Modes {
		var ref []model.Time
		for _, algo := range append(Algorithms, AlgoBruteForce) {
			rep, err := timer.Run(context.Background(), Query{K: 20, Mode: mode, Algorithm: algo, Threads: 2})
			if err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
			got := sortedSlacks(rep.Paths)
			if ref == nil {
				ref = got
				continue
			}
			if len(got) != len(ref) {
				t.Fatalf("%v %v: %d paths, want %d", algo, mode, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%v %v: slack %d = %v, want %v", algo, mode, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestReportMetadata(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(1))
	rep, err := NewTimer(d).Run(context.Background(), Query{K: 5, Mode: model.Setup})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != AlgoLCA {
		t.Errorf("Algorithm = %v", rep.Algorithm)
	}
	// The sparse plan prunes LCA-inactive levels, so Jobs is at most
	// depth+2 (every level plus self-loop and PI) and at least the
	// ungrouped jobs alone; the dense reference runs the full plan.
	if rep.Stats.Jobs < 2 || rep.Stats.Jobs > d.Depth+2 {
		t.Errorf("Stats.Jobs = %d, want in [2, %d]", rep.Stats.Jobs, d.Depth+2)
	}
	dense, err := NewTimer(d).Run(context.Background(), Query{K: 5, Mode: model.Setup, DenseKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Stats.Jobs != d.Depth+2 {
		t.Errorf("dense Stats.Jobs = %d, want %d", dense.Stats.Jobs, d.Depth+2)
	}
	if w, ok := rep.WorstSlack(); !ok || w != rep.Paths[0].Slack {
		t.Errorf("WorstSlack = %v/%v", w, ok)
	}
	if _, ok := (&Report{}).WorstSlack(); ok {
		t.Error("empty report has a worst slack")
	}
}

func TestNegativeK(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(1))
	if _, err := NewTimer(d).Run(context.Background(), Query{K: -1}); err == nil {
		t.Fatal("negative K accepted")
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"lca": AlgoLCA, "ours": AlgoLCA, "": AlgoLCA,
		"pairwise": AlgoPairwise, "opentimer": AlgoPairwise,
		"blockwise": AlgoBlockwise, "happytimer": AlgoBlockwise,
		"bnb": AlgoBranchAndBound, "itimerc": AlgoBranchAndBound,
		"brute": AlgoBruteForce, "rerank": AlgoRerankInexact,
	}
	for s, want := range cases {
		got, err := ParseAlgorithm(s)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v/%v, want %v", s, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	for _, a := range append(Algorithms, AlgoBruteForce, AlgoRerankInexact) {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("round trip of %v failed", a)
		}
	}
	if !strings.HasPrefix(Algorithm(42).String(), "Algorithm(") {
		t.Error("unknown algorithm String")
	}
}

func TestPreCPPRSlacks(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(9))
	timer := NewTimer(d)
	pre := timer.PreCPPRSlacks(model.Setup)
	if len(pre) != d.NumFFs() {
		t.Fatalf("%d endpoint slacks, want %d", len(pre), d.NumFFs())
	}
	// The worst pre-CPPR endpoint slack must be <= the worst post-CPPR
	// path slack (credits never make things worse).
	rep, err := timer.Run(context.Background(), Query{K: 1, Mode: model.Setup})
	if err != nil {
		t.Fatal(err)
	}
	worstPre := model.MaxTime
	for _, s := range pre {
		if s.Valid && s.Slack < worstPre {
			worstPre = s.Slack
		}
	}
	if w, ok := rep.WorstSlack(); ok && worstPre > w {
		t.Errorf("worst pre %v > worst post %v", worstPre, w)
	}
}

func TestSetBudgets(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(2))
	timer := NewTimer(d)
	timer.SetBudgets(5, 2)
	rep, err := timer.Run(context.Background(), Query{K: 10, Mode: model.Setup, Algorithm: AlgoBlockwise})
	if err != nil {
		t.Errorf("blockwise budget exhaustion must degrade, not error: %v", err)
	} else if !rep.Degraded {
		t.Error("blockwise under tiny budget should set Degraded")
	}
	rep, err = timer.Run(context.Background(), Query{K: 10, Mode: model.Setup, Algorithm: AlgoBranchAndBound})
	if err != nil {
		t.Errorf("bnb budget exhaustion must degrade, not error: %v", err)
	} else if !rep.Degraded {
		t.Error("bnb under tiny budget should set Degraded")
	}
	timer.SetBudgets(0, 0) // no change
	if _, err := timer.Run(context.Background(), Query{K: 1, Mode: model.Setup, Algorithm: AlgoLCA}); err != nil {
		t.Errorf("lca should be unaffected by budgets: %v", err)
	}
}
