package cppr

import (
	"context"

	"fastcppr/internal/qerr"
	"fastcppr/internal/sched"
	"fastcppr/model"
)

// This file implements speculative what-if analysis on the snapshot
// chain: Timer.Fork yields an isolated child timer that shares the
// parent's caches copy-on-write, and Timer.WhatIf scores many candidate
// edit sets concurrently without materializing a full timer per
// candidate.

// fork returns an isolated copy of s for a child timer. The heavy
// immutable substrate — design, clock tree, engines, baselines, the
// flushed graph-arrival windows — is shared by pointer; everything an
// edit or a cache store can mutate is forked copy-on-write:
//
//   - each built corner's job cache, via JobCache.Fork (entries and
//     retained propagations shared, watermarks clamped to s.seq);
//   - the whole-report query memo, likewise clamped;
//   - unbuilt lazy-corner slots start unbuilt in the child (each side
//     builds its own, so a child edit never poisons the parent's slot).
//
// Clamping matters because the parent and child journal chains diverge
// at s.seq: a parent-side validation past the fork point proves nothing
// about the child's edits, and vice versa. Counters stay shared — a
// timer's Stats aggregate across its forks.
func (s *snapshot) fork() *snapshot {
	ns := *s
	nb := *s.base
	nb.cache = s.base.cache.Fork(s.seq)
	ns.base = &nb
	ns.extra = make([]*lazyCorner, len(s.extra))
	for i, slot := range s.extra {
		nslot := &lazyCorner{}
		if ce := slot.built(); ce != nil {
			nce := *ce
			nce.cache = ce.cache.Fork(s.seq)
			nslot.ce.Store(&nce)
		}
		ns.extra[i] = nslot
	}
	ns.memo = s.memo.fork(s.seq)
	return &ns
}

// Fork returns an isolated child timer positioned at the parent's
// current snapshot. The child shares the parent's immutable substrate
// (design, clock tree, engines) and starts with the parent's caches —
// job caches, retained propagations, query memo — forked copy-on-write,
// so its first queries are as warm as the parent's. Isolation is
// two-way: edits on the child are never visible to the parent, and
// parent edits made after the fork are never visible to the child.
// Both timers remain fully usable and safe for concurrent use; Stats
// counters are shared, aggregating across the fork family.
func (t *Timer) Fork() *Timer {
	s := t.snap.Load()
	s.ctr.forks.Add(1)
	nt := &Timer{}
	nt.snap.Store(s.fork())
	if p := t.par.Load(); p != nil {
		nt.par.Store(p)
	}
	return nt
}

// ArcEdit is one speculative arc-delay edit: set the delay window of
// the arc From -> To at Corner.
type ArcEdit struct {
	Corner model.Corner
	From   model.PinID
	To     model.PinID
	Delay  model.Window
}

// EditSet is one what-if candidate: a set of arc edits applied together
// (in order) to a forked timer before scoring.
type EditSet []ArcEdit

// CandidateScore is one candidate's what-if outcome. Reports[i] is the
// candidate's report for queries[i]; Delta[i] is its worst slack minus
// the baseline's (positive = the edit improves the critical path),
// valid only when DeltaValid[i] — both sides reported at least one
// path. A failed candidate (bad edit, cancellation) carries Err and
// nil slices; other candidates are unaffected.
type CandidateScore struct {
	Candidate  int
	Err        error
	Reports    []Report
	Delta      []model.Time
	DeltaValid []bool
}

// WhatIfResult is Timer.WhatIf's outcome: the baseline reports computed
// on the unedited timer, and one score per candidate, index-aligned
// with the candidates argument.
type WhatIfResult struct {
	Baseline   []Report
	Candidates []CandidateScore
}

// WhatIf scores candidate edit sets against the timer's current state:
// for each candidate it forks an isolated child timer, applies the
// candidate's edits, runs the queries, and reports each query's worst
// slack delta against the baseline (the unedited timer's report,
// computed once). Candidates are evaluated concurrently under the
// Timer's Parallelism budget on one shared work-stealing pool — each
// candidate's inner engine jobs spawn as stealable tasks on the same
// pool, so the worker budget is shared across timers, not multiplied.
//
// The speculation is cheap by construction: a child starts with the
// parent's caches forked copy-on-write, so a candidate recomputes only
// the jobs whose cone its own edits dirty — typically by patching the
// job's retained propagation rather than re-running it — while
// everything else serves from the shared warm state. Reports are
// byte-identical to a fresh timer built on the edited design, at any
// worker count. The parent timer is never modified.
//
// A per-candidate failure is recorded in that candidate's Err; the
// call itself errors only on invalid queries, an empty query list, or
// context cancellation.
func (t *Timer) WhatIf(ctx context.Context, candidates []EditSet, queries []Query) (*WhatIfResult, error) {
	if len(queries) == 0 {
		return nil, qerr.Invalid("WhatIf needs at least one query")
	}
	s := t.snap.Load()
	par := t.Parallelism()
	nqs := make([]Query, len(queries))
	for i, q := range queries {
		nq := q
		if err := s.normalize(&nq); err != nil {
			return nil, err
		}
		nq.Threads = par.threadsFor(nq)
		nqs[i] = nq
	}
	s.ctr.whatifCandidates.Add(int64(len(candidates)))
	res := &WhatIfResult{
		Baseline:   make([]Report, len(nqs)),
		Candidates: make([]CandidateScore, len(candidates)),
	}
	// Baseline once, on the frozen snapshot — candidate evaluations
	// compare against it and also inherit the caches it warmed.
	for i, nq := range nqs {
		rep, err := s.runWith(ctx, nq, nil)
		if err != nil {
			return nil, err
		}
		res.Baseline[i] = rep
	}
	eval := func(ci int, tc *sched.TC) {
		sc := &res.Candidates[ci]
		sc.Candidate = ci
		s.ctr.forks.Add(1)
		child := &Timer{}
		child.snap.Store(s.fork())
		if p := t.par.Load(); p != nil {
			child.par.Store(p)
		}
		for _, ed := range candidates[ci] {
			if err := child.SetArcDelayAt(ed.Corner, ed.From, ed.To, ed.Delay); err != nil {
				sc.Err = err
				return
			}
		}
		cs := child.snap.Load()
		sc.Reports = make([]Report, len(nqs))
		sc.Delta = make([]model.Time, len(nqs))
		sc.DeltaValid = make([]bool, len(nqs))
		for qi, nq := range nqs {
			rep, err := cs.runWith(ctx, nq, tc)
			if err != nil {
				sc.Err = err
				return
			}
			sc.Reports[qi] = rep
			bw, bok := res.Baseline[qi].WorstSlack()
			cw, cok := rep.WorstSlack()
			if bok && cok {
				sc.Delta[qi] = cw - bw
				sc.DeltaValid[qi] = true
			}
		}
	}
	if w := par.workers(); w > 1 && len(candidates) > 1 {
		pool := sched.New(w)
		pool.ForEach(len(candidates), eval)
		pool.Close()
	} else {
		for i := range candidates {
			eval(i, nil)
		}
	}
	if err := qerr.FromContext(ctx); err != nil {
		return nil, err
	}
	return res, nil
}
