package cppr

import (
	"context"
	"math/rand"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// reportKey extracts the comparable slack list of a report.
func reportKey(t *testing.T, timer *Timer, opts Query) []model.Time {
	t.Helper()
	rep, err := timer.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sortedSlacks(rep.Paths)
}

func TestSetArcDelayMatchesFreshTimer(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		d := gen.MustGenerate(gen.Medium(200 + seed))
		timer := NewTimer(d)
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 8; step++ {
			// Pick a random arc and perturb it.
			ai := rng.Intn(d.NumArcs())
			arc := d.Arcs[ai]
			nw := model.Window{
				Early: arc.Delay.Early + model.Time(rng.Intn(30)),
				Late:  arc.Delay.Late + model.Time(rng.Intn(60)+30),
			}
			if err := timer.SetArcDelay(arc.From, arc.To, nw); err != nil {
				t.Fatal(err)
			}
			for _, mode := range model.Modes {
				got := reportKey(t, timer, Query{K: 40, Mode: mode})
				// Fresh timer over the edited design (SetArcDelay is
				// copy-on-write; the caller's d is never mutated).
				want := reportKey(t, NewTimer(timer.Design()), Query{K: 40, Mode: mode})
				if len(got) != len(want) {
					t.Fatalf("seed %d step %d %v: %d vs %d paths", seed, step, mode, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d step %d %v: slack %d = %v, fresh %v",
							seed, step, mode, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestSetArcDelayClockArcRefreshesCredits(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(3))
	timer := NewTimer(d)
	// Find a clock-tree arc (root fan-out).
	var from, to model.PinID = model.NoPin, model.NoPin
	for _, ai := range d.FanOut(d.Root) {
		from, to = d.Arcs[ai].From, d.Arcs[ai].To
		break
	}
	if from == model.NoPin {
		t.Skip("no clock arc")
	}
	// Widening the root arc's window raises every same-domain credit.
	old := d.Arcs[d.ArcBetween(from, to)].Delay
	if err := timer.SetArcDelay(from, to, model.Window{Early: old.Early, Late: old.Late + 500}); err != nil {
		t.Fatal(err)
	}
	rep, err := timer.Run(context.Background(), Query{K: 10, Mode: model.Hold})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewTimer(timer.Design()).Run(context.Background(), Query{K: 10, Mode: model.Hold})
	if err != nil {
		t.Fatal(err)
	}
	a, b := sortedSlacks(rep.Paths), sortedSlacks(fresh.Paths)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slack %d: incremental %v vs fresh %v", i, a[i], b[i])
		}
	}
}

func TestSetArcDelayUpdatesPreCPPRSlacks(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(7))
	timer := NewTimer(d)
	before := timer.PreCPPRSlacks(model.Setup)
	// Slow down a data arc massively; some endpoint slack must change.
	var target model.Arc
	var ai int
	for i, a := range d.Arcs {
		if d.Pins[a.From].Kind == model.FFOutput {
			target, ai = a, i
			break
		}
	}
	_ = ai
	if err := timer.SetArcDelay(target.From, target.To,
		model.Window{Early: target.Delay.Early, Late: target.Delay.Late + model.Ns(5)}); err != nil {
		t.Fatal(err)
	}
	after := timer.PreCPPRSlacks(model.Setup)
	changed := false
	for i := range before {
		if before[i].Slack != after[i].Slack {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("5ns slowdown changed no endpoint slack")
	}
}

func TestSetArcDelayErrors(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(1))
	timer := NewTimer(d)
	if err := timer.SetArcDelay(0, 0, model.Window{}); err == nil {
		t.Error("nonexistent arc accepted")
	}
	a := d.Arcs[0]
	if err := timer.SetArcDelay(a.From, a.To, model.Window{Early: 10, Late: 5}); err == nil {
		t.Error("inverted window accepted")
	}
}
