package cppr

import (
	"sync"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// TestConcurrentQueries backs the documented claim that a Timer is safe
// for concurrent Report/EndpointReport/PostCPPRSlacks calls.
// Run with -race for full effect.
func TestConcurrentQueries(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(77))
	timer := NewTimer(d)
	ref, err := timer.Report(Options{K: 50, Mode: model.Setup})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				switch g % 3 {
				case 0:
					rep, err := timer.Report(Options{K: 50, Mode: model.Setup, Threads: 2})
					if err != nil {
						errs <- err
						return
					}
					for j := range ref.Paths {
						if rep.Paths[j].Slack != ref.Paths[j].Slack {
							t.Errorf("goroutine %d: slack %d diverged", g, j)
							return
						}
					}
				case 1:
					if _, err := timer.EndpointReport(model.FFID(g%d.NumFFs()), Options{K: 5, Mode: model.Hold}); err != nil {
						errs <- err
						return
					}
				default:
					timer.PostCPPRSlacks(model.Hold, 2)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
