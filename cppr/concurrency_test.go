package cppr

import (
	"context"
	"errors"
	"sync"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// TestConcurrentQueries backs the documented claim that a Timer is safe
// for concurrent Run/ReportBatch/PostCPPRSlacksCtx calls.
// Run with -race for full effect.
func TestConcurrentQueries(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(77))
	timer := NewTimer(d)
	ref, err := timer.Run(context.Background(), Query{K: 50, Mode: model.Setup})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				switch g % 3 {
				case 0:
					rep, err := timer.Run(context.Background(), Query{K: 50, Mode: model.Setup, Threads: 2})
					if err != nil {
						errs <- err
						return
					}
					for j := range ref.Paths {
						if rep.Paths[j].Slack != ref.Paths[j].Slack {
							t.Errorf("goroutine %d: slack %d diverged", g, j)
							return
						}
					}
				case 1:
					if _, err := timer.Run(context.Background(), Query{K: 5, Mode: model.Hold, FilterCapture: true, CaptureFF: model.FFID(g % d.NumFFs())}); err != nil {
						errs <- err
						return
					}
				default:
					if _, err := timer.PostCPPRSlacksCtx(context.Background(), Query{Mode: model.Hold, Threads: 2}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentCancellation interleaves canceled and live queries on
// one Timer: canceled queries must return the taxonomy error without
// perturbing concurrent live queries. Run with -race for full effect.
func TestConcurrentCancellation(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(77))
	timer := NewTimer(d)
	ref, err := timer.Run(context.Background(), Query{K: 30, Mode: model.Setup})
	if err != nil {
		t.Fatal(err)
	}
	canceledCtx, cancel := context.WithCancel(context.Background())
	cancel()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if g%2 == 0 {
					_, err := timer.Run(canceledCtx, Query{K: 30, Mode: model.Setup, Threads: 2})
					if !errors.Is(err, ErrCanceled) {
						t.Errorf("goroutine %d: err = %v, want ErrCanceled", g, err)
						return
					}
				} else {
					rep, err := timer.Run(context.Background(), Query{K: 30, Mode: model.Setup, Threads: 2})
					if err != nil {
						t.Errorf("goroutine %d: live query failed: %v", g, err)
						return
					}
					for j := range ref.Paths {
						if rep.Paths[j].Slack != ref.Paths[j].Slack {
							t.Errorf("goroutine %d: slack %d diverged next to canceled queries", g, j)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
