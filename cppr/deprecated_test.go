//lint:file-ignore SA1019 this file intentionally exercises the deprecated shims.

// This file keeps every deprecated entry point covered: each shim must
// keep compiling and must answer exactly like its Query/Run replacement.
package cppr

import (
	"context"
	"errors"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

func TestDeprecatedReportShims(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(5))
	timer := NewTimer(d)
	opts := Options{K: 8, Mode: model.Setup, Threads: 2}
	want, err := timer.Run(context.Background(), Query{K: 8, Mode: model.Setup, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := timer.Report(opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSlacks(t, "Report", rep.Paths, want.Paths)

	rep, err = timer.ReportCtx(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSlacks(t, "ReportCtx", rep.Paths, want.Paths)

	rep, err = TopPaths(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSlacks(t, "TopPaths", rep.Paths, want.Paths)
}

func TestDeprecatedEndpointReportShims(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(5))
	timer := NewTimer(d)
	ff := model.FFID(1)
	want, err := timer.Run(context.Background(),
		Query{K: 5, Mode: model.Setup, FilterCapture: true, CaptureFF: ff})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := timer.EndpointReport(ff, Options{K: 5, Mode: model.Setup})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSlacks(t, "EndpointReport", rep.Paths, want.Paths)

	rep, err = timer.EndpointReportCtx(context.Background(), ff, Options{K: 5, Mode: model.Setup})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSlacks(t, "EndpointReportCtx", rep.Paths, want.Paths)

	// Validation still flows through the shim.
	if _, err := timer.EndpointReport(model.FFID(d.NumFFs()), Options{K: 1}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("out-of-range FF through shim: err = %v, want ErrInvalidQuery", err)
	}
}

func TestDeprecatedPostCPPRSlacks(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(5))
	timer := NewTimer(d)
	want, err := timer.PostCPPRSlacksCtx(context.Background(), Query{Mode: model.Hold, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := timer.PostCPPRSlacks(model.Hold, 2)
	if len(got) != len(want) {
		t.Fatalf("%d slacks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slack %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func assertSameSlacks(t *testing.T, label string, got, want []model.Path) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d paths, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Slack != want[i].Slack {
			t.Fatalf("%s: slack %d = %v, want %v", label, i, got[i].Slack, want[i].Slack)
		}
	}
}
