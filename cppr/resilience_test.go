package cppr

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"fastcppr/gen"
	"fastcppr/internal/faultinject"
	"fastcppr/model"
)

// cancelLatencyBound is how long a canceled query may take to return.
// The cooperative checks run every cancelStride iterations, so the real
// latency is microseconds; the bound is generous for loaded CI hosts.
const cancelLatencyBound = 2 * time.Second

// TestWorkerPanicContained injects a panic into an LCA engine worker and
// checks the resilience contract: the query returns an *InternalError
// carrying the panic message and a stack, the process survives, and the
// Timer answers the same query correctly once the fault is removed.
func TestWorkerPanicContained(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(3))
	timer := NewTimer(d)
	opts := Query{K: 20, Mode: model.Setup, Threads: 2}

	disarm := faultinject.Arm("core.worker", faultinject.Fault{Panic: "injected worker crash"})
	_, err := timer.Run(context.Background(), opts)
	disarm()
	if err == nil {
		t.Fatal("query with a panicking worker returned no error")
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if !strings.Contains(ie.Msg, "injected worker crash") {
		t.Errorf("InternalError.Msg = %q, want the injected message", ie.Msg)
	}
	if len(ie.Stack) == 0 {
		t.Error("InternalError carries no stack trace")
	}

	// The Timer must be reusable after a contained panic.
	rep, err := timer.Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("query after contained panic: %v", err)
	}
	if len(rep.Paths) == 0 {
		t.Fatal("query after contained panic returned no paths")
	}
}

// TestPairwisePanicContained covers the same contract on the pairwise
// baseline's worker pool.
func TestPairwisePanicContained(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(3))
	timer := NewTimer(d)
	opts := Query{K: 10, Mode: model.Setup, Threads: 2, Algorithm: AlgoPairwise}

	disarm := faultinject.Arm("baseline.pairwise.worker", faultinject.Fault{Panic: "injected pairwise crash"})
	_, err := timer.Run(context.Background(), opts)
	disarm()
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if _, err := timer.Run(context.Background(), opts); err != nil {
		t.Fatalf("pairwise query after contained panic: %v", err)
	}
}

// TestEndpointSweepPanicContained covers PostCPPRSlacksCtx's workers.
func TestEndpointSweepPanicContained(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(3))
	timer := NewTimer(d)

	disarm := faultinject.Arm("core.endpoint.worker", faultinject.Fault{Panic: "injected sweep crash"})
	_, err := timer.PostCPPRSlacksCtx(context.Background(), Query{Mode: model.Setup, Threads: 2})
	disarm()
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	out, err := timer.PostCPPRSlacksCtx(context.Background(), Query{Mode: model.Setup, Threads: 2})
	if err != nil || len(out) != d.NumFFs() {
		t.Fatalf("sweep after contained panic: %d slacks, err %v", len(out), err)
	}
}

// TestCancelMidQuery holds the engine's workers in flight with a delay
// fault, cancels the context, and checks the query returns promptly with
// the taxonomy error — then that the Timer still works.
func TestCancelMidQuery(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(3))
	timer := NewTimer(d)
	opts := Query{K: 50, Mode: model.Setup, Threads: 2}

	disarm := faultinject.Arm("core.worker", faultinject.Fault{Delay: 100 * time.Millisecond})
	defer disarm()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := timer.Run(ctx, opts)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the query get in flight
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if elapsed := time.Since(start); elapsed > cancelLatencyBound {
			t.Errorf("cancellation took %v, bound %v", elapsed, cancelLatencyBound)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v does not match context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled query never returned")
	}

	disarm()
	rep, err := timer.Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
	if len(rep.Paths) == 0 {
		t.Fatal("query after cancellation returned no paths")
	}
}

// TestDeadlineExceeded checks the deadline branch of the taxonomy.
func TestDeadlineExceeded(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(1))
	timer := NewTimer(d)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // deadline has certainly passed
	_, err := timer.Run(ctx, Query{K: 5, Mode: model.Setup})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v does not match context.DeadlineExceeded", err)
	}
}

// TestBlockwiseDegradedPartial forces blockwise budget exhaustion at
// increasing points of the propagation until the truncated search still
// yields paths: those paths must be individually exact and the report
// must carry the Degraded flag.
func TestBlockwiseDegradedPartial(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(2))
	timer := NewTimer(d)
	opts := Query{K: 10, Mode: model.Setup, Algorithm: AlgoBlockwise}
	for after := 64; after <= 1<<20; after *= 2 {
		disarm := faultinject.Arm("baseline.blockwise.budget", faultinject.Fault{After: after})
		rep, err := timer.Run(context.Background(), opts)
		disarm()
		if err != nil {
			t.Fatalf("after=%d: budget exhaustion must degrade, not error: %v", after, err)
		}
		if !rep.Degraded {
			t.Fatalf("propagation finished before any budget hit yielded partial paths (after=%d)", after)
		}
		if len(rep.Paths) == 0 {
			continue // truncated too early to reach any endpoint; try later
		}
		for i, p := range rep.Paths {
			ref, err := d.RecomputePath(model.Setup, p.Pins)
			if err != nil {
				t.Fatalf("degraded path %d invalid: %v", i, err)
			}
			if ref.Slack != p.Slack {
				t.Fatalf("degraded path %d slack %v, recomputed %v", i, p.Slack, ref.Slack)
			}
		}
		return
	}
	t.Fatal("no truncation point produced a degraded report with partial paths")
}

// TestBranchAndBoundDegradedPartial starves the BnB pop budget and
// checks the partial top-k plus Degraded flag.
func TestBranchAndBoundDegradedPartial(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(2))
	timer := NewTimer(d)
	timer.SetBudgets(0, 10)
	rep, err := timer.Run(context.Background(), Query{K: 1000, Mode: model.Setup, Algorithm: AlgoBranchAndBound})
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not error: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("MaxPops=10 did not set Degraded")
	}
	if len(rep.Paths) == 0 || len(rep.Paths) > 10 {
		t.Fatalf("%d partial paths from 10 pops", len(rep.Paths))
	}
	for i, p := range rep.Paths {
		ref, err := d.RecomputePath(model.Setup, p.Pins)
		if err != nil || ref.Slack != p.Slack {
			t.Fatalf("degraded path %d not exact: %v", i, err)
		}
	}
}

// TestLCAReportNeverDegraded pins the documented guarantee that the LCA
// engine has no budget and never sets the flag.
func TestLCAReportNeverDegraded(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(2))
	timer := NewTimer(d)
	rep, err := timer.Run(context.Background(), Query{K: 100, Mode: model.Hold})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatal("AlgoLCA report marked Degraded")
	}
}

// TestInvalidQueryErrors checks the ErrInvalidQuery class.
func TestInvalidQueryErrors(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(0))
	timer := NewTimer(d)
	bg := context.Background()
	if _, err := timer.Run(bg, Query{K: -1, Mode: model.Setup}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("negative K: err = %v, want ErrInvalidQuery", err)
	}
	if _, err := timer.Run(bg, Query{K: 1, Algorithm: Algorithm(99)}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("unknown algorithm: err = %v, want ErrInvalidQuery", err)
	}
	if _, err := timer.Run(bg, Query{K: 1, FilterCapture: true, CaptureFF: model.FFID(d.NumFFs())}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("out-of-range FF: err = %v, want ErrInvalidQuery", err)
	}
	if _, err := timer.Run(bg, Query{K: 1, Algorithm: AlgoPairwise, FilterCapture: true}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("non-LCA endpoint query: err = %v, want ErrInvalidQuery", err)
	}
}

// TestBudgetsSurviveRebuild is the regression test for the rebuild
// nil-guard: budgets set before a what-if edit must survive the rebuild
// triggered by a clock-arc delay change.
func TestBudgetsSurviveRebuild(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(5))
	timer := NewTimer(d)
	timer.SetBudgets(123, 456)

	// Re-apply an unchanged delay on a clock arc: semantically a no-op,
	// but it forces the full rebuild path.
	found := false
	for ai := range d.Arcs {
		arc := &d.Arcs[ai]
		if d.IsClockPin(arc.From) && d.IsClockPin(arc.To) {
			if err := timer.SetArcDelay(arc.From, arc.To, arc.Delay); err != nil {
				t.Fatalf("SetArcDelay: %v", err)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no clock arc in generated design")
	}
	s := timer.snap.Load()
	if s.base.bw.MaxTuples != 123 {
		t.Errorf("MaxTuples = %d after rebuild, want 123", s.base.bw.MaxTuples)
	}
	if s.base.bb.MaxPops != 456 {
		t.Errorf("MaxPops = %d after rebuild, want 456", s.base.bb.MaxPops)
	}
}
