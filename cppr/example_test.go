package cppr_test

import (
	"context"
	"fmt"
	"log"

	"fastcppr/cppr"
	"fastcppr/model"
)

// buildExample constructs the paper's Figure-1 design: two flip-flop
// pairs, one hanging off a heavily skewed clock trunk.
func buildExample() *model.Design {
	b := model.NewBuilder("fig1", model.Ns(10))
	clk := b.AddClockRoot("clk")
	t1 := b.AddClockBuf("t1")
	t2 := b.AddClockBuf("t2")
	b.AddArc(clk, t1, model.Window{Early: 10, Late: 15})
	b.AddArc(clk, t2, model.Window{Early: 10, Late: 110})
	ckq := model.Window{Early: 10, Late: 10}
	ff1 := b.AddFF("ff1", 0, 0, ckq)
	ff2 := b.AddFF("ff2", 0, 0, ckq)
	ff3 := b.AddFF("ff3", 0, 0, ckq)
	ff4 := b.AddFF("ff4", 0, 0, ckq)
	leaf := model.Window{Early: 5, Late: 5}
	b.AddArc(t1, ff1.Clock, leaf)
	b.AddArc(t1, ff2.Clock, leaf)
	b.AddArc(t2, ff3.Clock, leaf)
	b.AddArc(t2, ff4.Clock, leaf)
	g1 := b.AddComb("g1")
	g2 := b.AddComb("g2")
	b.AddArc(ff1.Q, g1, model.Window{Early: 100, Late: 200})
	b.AddArc(g1, ff2.D, model.Window{Early: 10, Late: 10})
	b.AddArc(ff3.Q, g2, model.Window{Early: 100, Late: 160})
	b.AddArc(g2, ff4.D, model.Window{Early: 10, Late: 10})
	return b.MustBuild()
}

// Example runs a basic top-k post-CPPR query and prints the slack
// decomposition of each path.
func Example() {
	d := buildExample()
	rep, err := cppr.NewTimer(d).Run(context.Background(), cppr.Query{K: 2, Mode: model.Setup})
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range rep.Paths {
		fmt.Printf("#%d %s->%s slack %v (pre %v + credit %v)\n",
			i+1, d.FFs[p.LaunchFF].Name, d.FFs[p.CaptureFF].Name,
			p.Slack, p.PreSlack, p.Credit)
	}
	// Output:
	// #1 ff1->ff2 slack 9.780ns (pre 9.775ns + credit 0.005ns)
	// #2 ff3->ff4 slack 9.820ns (pre 9.720ns + credit 0.100ns)
}

// ExampleTimer_Run shows a report_timing -to style query via the
// capture-endpoint filter.
func ExampleTimer_Run() {
	d := buildExample()
	timer := cppr.NewTimer(d)
	rep, err := timer.Run(context.Background(), cppr.Query{
		K: 5, Mode: model.Setup,
		FilterCapture: true, CaptureFF: d.Pins[d.FFs[3].Data].FF,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d path(s) captured by %s, worst slack %v\n",
		len(rep.Paths), d.FFs[3].Name, rep.Paths[0].Slack)
	// Output:
	// 1 path(s) captured by ff4, worst slack 9.820ns
}

// ExampleTimer_SetArcDelay demonstrates an incremental what-if edit.
func ExampleTimer_SetArcDelay() {
	d := buildExample()
	timer := cppr.NewTimer(d)
	g1, _ := d.PinByName("g1")
	ff2d, _ := d.PinByName("ff2/D")
	if err := timer.SetArcDelay(g1, ff2d, model.Window{Early: 10, Late: 300}); err != nil {
		log.Fatal(err)
	}
	rep, _ := timer.Run(context.Background(), cppr.Query{K: 1, Mode: model.Setup})
	fmt.Printf("worst setup slack after +290ps: %v\n", rep.Paths[0].Slack)
	// Output:
	// worst setup slack after +290ps: 9.490ns
}
