package cppr

import (
	"math/bits"

	"fastcppr/model"
)

// CornerMask selects the delay corners a query analyses: bit c selects
// corner c (model.Corner ids are dense, corner 0 is the base corner).
// The zero mask reads as "corner 0 only" — the single-corner fast path
// — so pre-MCMM queries keep their meaning unchanged.
type CornerMask uint64

// CornerAll selects every corner of the design the query runs against;
// it is clamped to the design's corner count during normalization.
const CornerAll CornerMask = ^CornerMask(0)

// CornerBit returns the mask selecting exactly corner c.
func CornerBit(c model.Corner) CornerMask { return CornerMask(1) << c }

// Has reports whether the mask selects corner c.
func (m CornerMask) Has(c model.Corner) bool { return m&CornerBit(c) != 0 }

// Count returns the number of selected corners.
func (m CornerMask) Count() int { return bits.OnesCount64(uint64(m)) }

// List expands the mask into an ascending list of corner ids.
func (m CornerMask) List() []model.Corner {
	out := make([]model.Corner, 0, m.Count())
	for v := uint64(m); v != 0; v &= v - 1 {
		out = append(out, model.Corner(bits.TrailingZeros64(v)))
	}
	return out
}

// single returns the selected corner when exactly one bit is set.
func (m CornerMask) single() (model.Corner, bool) {
	if m.Count() != 1 {
		return 0, false
	}
	return model.Corner(bits.TrailingZeros64(uint64(m))), true
}

// mergeCornerReports reduces per-corner reports of one query into the
// worst-corner merged report: the k most critical paths over all
// selected corners, each tagged with the corner it was computed at.
// Per-corner path lists are sorted ascending by post-CPPR slack, so a
// k-way merge of per-corner top-k prefixes is exact. Ties keep the
// lowest corner id, making the merge deterministic and independent of
// execution order. Engine counters are summed and Degraded is sticky;
// Elapsed is left for the caller (wall time for Run, aggregate compute
// for batch-served queries).
func mergeCornerReports(corners []model.Corner, reps []Report, k int) Report {
	out := Report{Algorithm: reps[0].Algorithm}
	remaining := 0
	for i := range reps {
		remaining += len(reps[i].Paths)
		out.Degraded = out.Degraded || reps[i].Degraded
		out.Stats.Jobs += reps[i].Stats.Jobs
		out.Stats.Candidates += reps[i].Stats.Candidates
		out.Stats.Kept += reps[i].Stats.Kept
		out.Stats.Reconstructed += reps[i].Stats.Reconstructed
	}
	if remaining < k {
		k = remaining
	}
	out.Paths = make([]model.Path, 0, k)
	out.PathCorners = make([]model.Corner, 0, k)
	idx := make([]int, len(reps))
	for len(out.Paths) < k {
		best := -1
		for i := range reps {
			if idx[i] >= len(reps[i].Paths) {
				continue
			}
			if best < 0 || reps[i].Paths[idx[i]].Slack < reps[best].Paths[idx[best]].Slack {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out.Paths = append(out.Paths, reps[best].Paths[idx[best]])
		out.PathCorners = append(out.PathCorners, corners[best])
		idx[best]++
	}
	if len(out.PathCorners) > 0 {
		out.Corner = out.PathCorners[0]
	} else if len(corners) > 0 {
		out.Corner = corners[0]
	}
	return out
}
