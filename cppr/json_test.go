package cppr

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

func TestWriteJSONRoundTrip(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(4))
	timer := NewTimer(d)
	rep, err := timer.Run(context.Background(), Query{K: 8, Mode: model.Hold})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d, &rep, model.Hold, 8); err != nil {
		t.Fatal(err)
	}
	var back ReportJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Design != d.Name || back.Mode != "hold" || back.Algorithm != "lca" || back.K != 8 {
		t.Fatalf("header = %+v", back)
	}
	if len(back.Paths) != len(rep.Paths) {
		t.Fatalf("%d paths, want %d", len(back.Paths), len(rep.Paths))
	}
	for i, pj := range back.Paths {
		p := rep.Paths[i]
		if pj.Rank != i+1 || pj.SlackPs != p.Slack.Ps() || pj.CreditPs != p.Credit.Ps() {
			t.Fatalf("path %d = %+v", i, pj)
		}
		if pj.SlackPs != pj.PreSlackPs+pj.CreditPs {
			t.Fatalf("path %d decomposition inconsistent", i)
		}
		if len(pj.Pins) != len(p.Pins) {
			t.Fatalf("path %d pin count", i)
		}
		// Names resolve back to the same pins.
		for j, name := range pj.Pins {
			id, ok := d.PinByName(name)
			if !ok || id != p.Pins[j] {
				t.Fatalf("path %d pin %d name %q does not resolve", i, j, name)
			}
		}
		if pj.Launch == "" || pj.Capture == "" {
			t.Fatalf("path %d missing endpoints", i)
		}
	}
}

func TestJSONPILaunchAndSelfLoopFlags(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(6))
	timer := NewTimer(d)
	rep, err := timer.Run(context.Background(), Query{K: 100000, Mode: model.Setup})
	if err != nil {
		t.Fatal(err)
	}
	j := rep.JSON(d, model.Setup, 100000)
	sawPI, sawSelf := false, false
	for i, pj := range j.Paths {
		p := rep.Paths[i]
		if p.LaunchFF == model.NoFF {
			sawPI = true
			if !strings.HasPrefix(pj.Launch, "in") {
				t.Fatalf("PI launch name %q", pj.Launch)
			}
		}
		if p.SelfLoop() && !pj.SelfLoop {
			t.Fatal("self-loop flag lost")
		}
		if p.SelfLoop() {
			sawSelf = true
		}
	}
	_ = sawPI
	_ = sawSelf // presence depends on the seed; flags verified above when present
}
