package cppr

import (
	"context"

	"fastcppr/internal/qerr"
	"fastcppr/internal/sched"
	"fastcppr/model"
)

// BatchResult pairs one batch query's report with its error. Exactly one
// of the two is meaningful: Err == nil means Report is the query's
// answer.
type BatchResult struct {
	Report Report
	Err    error
}

// ReportBatch answers many queries against one snapshot. All queries
// observe the same design epoch — an edit racing the batch affects
// either every query or none — and the batch shares work that single
// queries would repeat: queries that are identical after normalization
// run once, AlgoLCA queries differing only in K are served by a single
// top-max(K) run (exact search returns paths in ascending slack order,
// so a top-k report is the k-prefix of a larger one), and all runs draw
// propagation and heap scratch from shared pools.
//
// A multi-corner query is fanned out into one execution unit per
// selected corner; the units spread over the worker pool alongside
// every other query's and the per-corner reports are merged into the
// worst-corner answer afterwards. Corner units dedupe across queries
// too: a single-corner query and a CornerAll query share the run for
// the corner they have in common.
//
// Parallelism is managed by the executor: a work-stealing pool sized by
// the Timer's Parallelism budget (see SetParallelism) runs one stealable
// task per execution unit, and each AlgoLCA unit's candidate-generation
// jobs are themselves spawned as stealable tasks on the same pool. A
// batch of one big query and many small ones therefore saturates every
// worker — idle workers steal the big query's jobs instead of waiting —
// and a query's own Threads field is ignored. Baseline-algorithm units,
// whose parallelism is a plain thread count, get an even share of the
// pool. A query's Timeout bounds its own units: each unit runs under a child
// context carrying the most generous member budget, so one unit hitting
// its deadline fails only its own members with ErrDeadlineExceeded —
// the rest of the batch completes under the parent context.
// A query-merged report carries the Stats and Elapsed of the shared
// execution that served it; a corner-merged report sums them over its
// corner runs.
//
// The returned slice always has len(queries) entries, position-matched
// to the input; a query that fails validation gets its Err set without
// disturbing the others. The second return value surfaces context
// cancellation (matching ErrCanceled / ErrDeadlineExceeded), in which
// case unserved queries carry the same error.
func (t *Timer) ReportBatch(ctx context.Context, queries []Query) ([]BatchResult, error) {
	s := t.snap.Load()
	results := make([]BatchResult, len(queries))

	// Group execution units one run can serve. A unit is one query at
	// one corner; the key is the normalized single-corner query with
	// Threads and Timeout erased (parallelism is the executor's; the
	// shared run gets the most generous member budget) and, for AlgoLCA,
	// K erased (served by the group's max-K run via prefix clipping).
	type group struct {
		rep     Query // representative actually executed
		corner  model.Corner
		noLimit bool // some member has no Timeout: the run gets none
		members int  // distinct queries this unit serves
		out     Report
		err     error
	}
	// pending is one validated query awaiting assembly from its units.
	type pending struct {
		q       Query
		corners []model.Corner
		groups  []*group // unit serving corners[i]
	}
	index := make(map[Query]*group)
	var order []*group
	pend := make([]*pending, len(queries))
	for i := range queries {
		q := queries[i]
		if err := s.normalize(&q); err != nil {
			results[i].Err = err
			continue
		}
		p := &pending{q: q, corners: q.Corners.List()}
		for _, c := range p.corners {
			key := q
			key.Threads = 0
			key.Timeout = 0
			key.Corners = CornerBit(c)
			if key.Algorithm == AlgoLCA {
				key.K = 0
			}
			g, ok := index[key]
			if !ok {
				g = &group{rep: q, corner: c}
				g.rep.Threads = 0
				g.rep.Corners = CornerBit(c)
				index[key] = g
				order = append(order, g)
			}
			if q.K > g.rep.K {
				g.rep.K = q.K
			}
			// The shared run's deadline budget is the most generous of
			// its members': a member with no limit lifts the limit, and
			// otherwise the longest timeout wins. A member whose own
			// budget is shorter still gets a complete (early) answer.
			if q.Timeout == 0 {
				g.noLimit = true
				g.rep.Timeout = 0
			} else if !g.noLimit && q.Timeout > g.rep.Timeout {
				g.rep.Timeout = q.Timeout
			}
			g.members++
			p.groups = append(p.groups, g)
		}
		pend[i] = p
	}
	if len(order) == 0 {
		return results, qerr.FromContext(ctx)
	}

	// One stealable task per execution unit on a pool sized by the
	// Timer's Parallelism budget. AlgoLCA units fan their jobs back onto
	// the pool through their task context, so the pool — not the unit
	// count — is the only parallelism bound; baseline units, which take a
	// plain thread count, split the pool evenly (never below one thread:
	// the old cores/workers division could starve units when the batch
	// was wider than the machine).
	workers := t.Parallelism().workers()
	inner := workers / len(order)
	if inner < 1 {
		inner = 1
	}
	pool := sched.New(workers)
	grp := pool.NewGroup()
	for _, g := range order {
		g := g
		grp.Spawn(func(tc *sched.TC) {
			q := g.rep
			q.Threads = inner
			// Each execution unit runs under its own deadline child
			// context, so one slow unit exhausts its own budget — and
			// only its own members fail — while the rest of the batch
			// keeps the parent's.
			qctx, cancel := ctx, context.CancelFunc(nil)
			if q.Timeout > 0 {
				qctx, cancel = context.WithTimeout(ctx, q.Timeout)
			}
			// execute extends the batch's dedup across calls: a group
			// already answered by a previous batch or Run on this
			// snapshot is served from the query memo.
			g.out, g.err = s.execute(qctx, q, g.corner, tc)
			if cancel != nil {
				cancel()
			}
		})
	}
	grp.Wait(nil)
	pool.Close()

	// Assemble each query's answer from its units: clip shared runs to
	// the query's K, then merge across corners when more than one was
	// selected.
	for i, p := range pend {
		if p == nil {
			continue
		}
		reps := make([]Report, len(p.groups))
		failed, shared := false, false
		for j, g := range p.groups {
			if g.err != nil {
				results[i].Err = g.err
				failed = true
				break
			}
			if g.members > 1 {
				shared = true
			}
			reps[j] = clipReport(g.out, p.q.K)
		}
		if failed {
			continue
		}
		if shared {
			s.ctr.servedCoalesced.Add(1)
		}
		if len(reps) == 1 {
			rep := reps[0]
			rep.Corner, rep.Corners = p.corners[0], p.q.Corners
			if rep.Degraded {
				s.ctr.servedDegraded.Add(1)
			}
			results[i].Report = rep
			continue
		}
		rep := mergeCornerReports(p.corners, reps, p.q.K)
		rep.Corners = p.q.Corners
		for _, r := range reps {
			rep.Elapsed += r.Elapsed
		}
		if rep.Degraded {
			s.ctr.servedDegraded.Add(1)
		}
		results[i].Report = rep
	}
	return results, qerr.FromContext(ctx)
}

// clipReport narrows a group run's report to a member's K. Exact top-k
// paths come out in ascending slack order, so the member's answer is
// the k-prefix; the slice is copied so members never alias each other.
func clipReport(rep Report, k int) Report {
	if k >= len(rep.Paths) {
		return rep
	}
	out := rep
	out.Paths = make([]model.Path, k)
	copy(out.Paths, rep.Paths[:k])
	return out
}
