package cppr

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
	"fastcppr/sdc"
)

// reportBytes canonicalises a report for byte-identity comparison:
// Elapsed is the only field allowed to differ between a cached and an
// uncached run, so it is zeroed before marshalling.
func reportBytes(t *testing.T, d *model.Design, rep Report, mode model.Mode, k int) []byte {
	t.Helper()
	rep.Elapsed = 0
	b, err := json.Marshal(rep.JSON(d, mode, k))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustRun(t *testing.T, timer *Timer, q Query) Report {
	t.Helper()
	rep, err := timer.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// pickDataArc returns the index of a data arc (FF output source) chosen
// by rng — an edit the journal records, as opposed to a clock-tree edit
// that rebuilds the snapshot.
func pickDataArc(t *testing.T, d *model.Design, rng *rand.Rand) int {
	t.Helper()
	for tries := 0; tries < 10*d.NumArcs(); tries++ {
		ai := rng.Intn(d.NumArcs())
		if d.Pins[d.Arcs[ai].From].Kind == model.FFOutput {
			return ai
		}
	}
	t.Fatal("no data arc found")
	return -1
}

// TestWarmRequeryByteIdentical is the end-to-end soundness contract of
// the incremental caches: after each edit, a warm requery (journal
// revalidation + surviving job-cache entries) must be byte-identical to
// both a NoCache run on the same timer and a fresh timer built over the
// edited design.
func TestWarmRequeryByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		d := gen.MustGenerate(gen.Medium(300 + seed))
		timer := NewTimer(d)
		rng := rand.New(rand.NewSource(seed))
		// Prime the caches before the first edit so the warm runs below
		// genuinely exercise revalidation, not just cold fills.
		for _, mode := range model.Modes {
			mustRun(t, timer, Query{K: 40, Mode: mode})
		}
		for step := 0; step < 5; step++ {
			ai := pickDataArc(t, timer.Design(), rng)
			arc := timer.Design().Arcs[ai]
			nw := model.Window{
				Early: arc.Delay.Early + model.Time(rng.Intn(30)),
				Late:  arc.Delay.Late + model.Time(rng.Intn(60)+30),
			}
			if err := timer.SetArcDelay(arc.From, arc.To, nw); err != nil {
				t.Fatal(err)
			}
			nd := timer.Design()
			fresh := NewTimer(nd)
			for _, mode := range model.Modes {
				for _, k := range []int{1, 40} {
					q := Query{K: k, Mode: mode}
					warm := reportBytes(t, nd, mustRun(t, timer, q), mode, k)
					qc := q
					qc.NoCache = true
					cold := reportBytes(t, nd, mustRun(t, timer, qc), mode, k)
					ref := reportBytes(t, nd, mustRun(t, fresh, q), mode, k)
					if !bytes.Equal(warm, cold) {
						t.Fatalf("seed %d step %d %v k=%d: warm differs from NoCache:\n%s\nvs\n%s",
							seed, step, mode, k, warm, cold)
					}
					if !bytes.Equal(warm, ref) {
						t.Fatalf("seed %d step %d %v k=%d: warm differs from fresh timer:\n%s\nvs\n%s",
							seed, step, mode, k, warm, ref)
					}
				}
			}
		}
	}
}

// TestApplySDCDropsAllMemos: a topology-changing edit cannot be
// journalled, so it must reset the snapshot chain — sequence number
// back to zero, every job-cache entry and query-memo entry gone.
func TestApplySDCDropsAllMemos(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(11))
	timer := NewTimer(d)
	q := Query{K: 25, Mode: model.Setup}

	mustRun(t, timer, q)
	mustRun(t, timer, q)
	st := timer.Stats()
	if st.QueryMemoHits == 0 {
		t.Fatalf("repeat query on unedited snapshot missed the query memo: %+v", st)
	}
	if st.JobCacheMisses == 0 {
		t.Fatalf("first run populated no job-cache entries: %+v", st)
	}

	c := sdc.New()
	c.FalseFrom[d.FFs[0].Name] = true
	nd, err := timer.ApplySDC(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := timer.Stats().EditSeq; got != 0 {
		t.Fatalf("EditSeq after ApplySDC = %d, want 0 (fresh chain)", got)
	}

	// ApplySDC installs a false-path filter, which makes queries
	// ineligible for the job cache — but the query memo still works, and
	// both must start cold.
	before := timer.Stats()
	warm := mustRun(t, timer, q)
	mid := timer.Stats()
	if mid.QueryMemoMisses == before.QueryMemoMisses {
		t.Fatal("first query after ApplySDC served from a stale query memo")
	}
	mustRun(t, timer, q)
	after := timer.Stats()
	if after.QueryMemoHits == mid.QueryMemoHits {
		t.Fatal("repeat query after ApplySDC did not re-populate the query memo")
	}
	// And the post-SDC answer matches a fresh timer over the rebuilt
	// design with the same constraints applied.
	ref := NewTimer(nd)
	if _, err := ref.ApplySDC(c); err != nil {
		t.Fatal(err)
	}
	got := reportBytes(t, ref.Design(), warm, q.Mode, q.K)
	want := reportBytes(t, ref.Design(), mustRun(t, ref, q), q.Mode, q.K)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-SDC report differs from fresh timer:\n%s\nvs\n%s", got, want)
	}
}

// TestCornerScopedEditInvalidation: an edit to one corner's delays must
// not invalidate another corner's job cache, in either direction —
// extra-corner edits leave the base cache intact, and base-corner edits
// leave extra-corner caches intact.
func TestCornerScopedEditInvalidation(t *testing.T) {
	d0 := gen.MustGenerate(gen.Medium(21))
	d, slow, err := d0.WithDerivedCorner("slow", func(_ int, w model.Window) model.Window {
		return model.Window{Early: w.Early + w.Early/10, Late: w.Late + w.Late/5}
	})
	if err != nil {
		t.Fatal(err)
	}
	timer := NewTimer(d)
	qBase := Query{K: 30, Mode: model.Setup}
	qSlow := Query{K: 30, Mode: model.Setup, Corners: CornerBit(slow)}

	// Populate both corners' job caches.
	mustRun(t, timer, qBase)
	mustRun(t, timer, qSlow)
	primed := timer.Stats()

	// Edit the extra corner: its cache slot is rebuilt fresh, the base
	// corner's survives untouched.
	var arc model.Arc
	for _, a := range timer.Design().Arcs {
		if timer.Design().Pins[a.From].Kind == model.FFOutput {
			arc = a
			break
		}
	}
	w := timer.Design().ArcDelay(slow, timer.Design().ArcBetween(arc.From, arc.To))
	if err := timer.SetArcDelayAt(slow, arc.From, arc.To,
		model.Window{Early: w.Early, Late: w.Late + 100}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, timer, qBase)
	st := timer.Stats()
	if st.JobCacheMisses != primed.JobCacheMisses {
		t.Fatalf("base-corner requery after slow-corner edit re-ran jobs: misses %d -> %d",
			primed.JobCacheMisses, st.JobCacheMisses)
	}
	// The requery must be served from cache — either job-by-job or, now
	// that the query memo is carried across corner-disjoint edits, as one
	// whole-report cone skip.
	if st.JobCacheHits == primed.JobCacheHits && st.QueryMemoHits == primed.QueryMemoHits {
		t.Fatal("base-corner requery after slow-corner edit hit neither cache")
	}
	if st.ConeSkips == primed.ConeSkips {
		t.Fatal("corner-disjoint edit crossing did not count a cone skip")
	}
	mustRun(t, timer, qSlow)
	st2 := timer.Stats()
	if st2.JobCacheMisses == st.JobCacheMisses {
		t.Fatal("slow-corner requery after its own edit served stale entries")
	}

	// Edit the base corner on a data arc: the slow corner's rebuilt
	// cache survives, while base entries whose cone contains the edited
	// arc's source are invalidated (the self-loop/cross jobs always
	// qualify — their cone is every FF output's forward cone).
	if err := timer.SetArcDelay(arc.From, arc.To,
		model.Window{Early: arc.Delay.Early, Late: arc.Delay.Late + 100}); err != nil {
		t.Fatal(err)
	}
	pre := timer.Stats()
	mustRun(t, timer, qSlow)
	st3 := timer.Stats()
	if st3.JobCacheMisses != pre.JobCacheMisses {
		t.Fatalf("slow-corner requery after base edit re-ran jobs: misses %d -> %d",
			pre.JobCacheMisses, st3.JobCacheMisses)
	}
	mustRun(t, timer, qBase)
	st4 := timer.Stats()
	if st4.JobCacheInvalidated == st3.JobCacheInvalidated {
		t.Fatal("base edit inside cached cones invalidated no entries")
	}

	// Both corners must still answer exactly: compare against a fresh
	// timer over the twice-edited design.
	fresh := NewTimer(timer.Design())
	for _, q := range []Query{qBase, qSlow} {
		got := reportBytes(t, timer.Design(), mustRun(t, timer, q), q.Mode, q.K)
		want := reportBytes(t, timer.Design(), mustRun(t, fresh, q), q.Mode, q.K)
		if !bytes.Equal(got, want) {
			t.Fatalf("corners %v: edited timer differs from fresh:\n%s\nvs\n%s", q.Corners, got, want)
		}
	}
}

// TestStatsJSONRoundTrip: TimerStats is part of the JSON surface
// (cpprbench emits it); every field must survive a marshal/unmarshal
// round trip.
func TestStatsJSONRoundTrip(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(31))
	timer := NewTimer(d)
	q := Query{K: 20, Mode: model.Setup}
	mustRun(t, timer, q)
	mustRun(t, timer, q) // query-memo hit
	arc := d.Arcs[pickDataArc(t, d, rand.New(rand.NewSource(1)))]
	if err := timer.SetArcDelay(arc.From, arc.To,
		model.Window{Early: arc.Delay.Early, Late: arc.Delay.Late + 50}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, timer, q) // journal revalidation: hits, misses or invalidations
	timer.NoteServed(3, 1)
	// Two identical batch queries share one execution unit, so both
	// count as coalesced.
	if _, err := timer.ReportBatch(context.Background(), []Query{q, q}); err != nil {
		t.Fatal(err)
	}

	st := timer.Stats()
	if st.EditSeq != 1 {
		t.Fatalf("EditSeq = %d, want 1 after one journalled edit", st.EditSeq)
	}
	if st.QueryMemoHits == 0 || st.QueryMemoMisses == 0 || st.JobCacheMisses == 0 {
		t.Fatalf("counters not exercised: %+v", st)
	}
	if st.ServedAdmitted != 3 || st.ServedShed != 1 || st.ServedCoalesced != 2 {
		t.Fatalf("served counters not exercised: %+v", st)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back TimerStats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("round trip changed stats:\n%+v\nvs\n%+v", back, st)
	}

	// The macromodel counters ride the same schema; a hierarchical
	// timer must round-trip them non-zero.
	hd := gen.MustGenerateBlocked(gen.BlockedArray(9))
	ht, err := NewHierTimer(hd, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	internal, _ := hierArcSamples(t, ht)
	ha := hd.Arcs[internal]
	if err := ht.SetArcDelayAt(model.BaseCorner, ha.From, ha.To,
		model.Window{Early: 1, Late: 300}); err != nil {
		t.Fatal(err)
	}
	hst := ht.Stats()
	if hst.MacroExtracted == 0 || hst.MacroReused == 0 || hst.MacroReextracted != 1 {
		t.Fatalf("macromodel counters not exercised: %+v", hst)
	}
	hb, err := json.Marshal(hst)
	if err != nil {
		t.Fatal(err)
	}
	var hback TimerStats
	if err := json.Unmarshal(hb, &hback); err != nil {
		t.Fatal(err)
	}
	if hback != hst {
		t.Fatalf("hier round trip changed stats:\n%+v\nvs\n%+v", hback, hst)
	}
}

// TestNoCacheBypass: NoCache queries must not read or populate either
// cache layer, and must still produce the exact answer.
func TestNoCacheBypass(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(41))
	timer := NewTimer(d)
	q := Query{K: 15, Mode: model.Hold, NoCache: true}
	first := mustRun(t, timer, q)
	second := mustRun(t, timer, q)
	st := timer.Stats()
	if st.JobCacheHits != 0 || st.JobCacheMisses != 0 ||
		st.QueryMemoHits != 0 || st.QueryMemoMisses != 0 {
		t.Fatalf("NoCache queries touched cache counters: %+v", st)
	}
	a := reportBytes(t, d, first, q.Mode, q.K)
	b := reportBytes(t, d, second, q.Mode, q.K)
	if !bytes.Equal(a, b) {
		t.Fatalf("repeated NoCache runs differ:\n%s\nvs\n%s", a, b)
	}
	// And a cached run answers identically.
	qc := q
	qc.NoCache = false
	c := reportBytes(t, d, mustRun(t, timer, qc), q.Mode, q.K)
	if !bytes.Equal(a, c) {
		t.Fatalf("cached run differs from NoCache run:\n%s\nvs\n%s", a, c)
	}
}

// TestKPrefixAcrossBudgets: one max-K execution serves every smaller K
// through the query memo, and a larger K re-runs only what it must —
// with answers byte-identical to fresh runs throughout.
func TestKPrefixAcrossBudgets(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(51))
	timer := NewTimer(d)
	mustRun(t, timer, Query{K: 60, Mode: model.Setup})
	st := timer.Stats()

	for _, k := range []int{1, 12, 60} {
		q := Query{K: k, Mode: model.Setup}
		got := reportBytes(t, d, mustRun(t, timer, q), q.Mode, k)
		want := reportBytes(t, d, mustRun(t, NewTimer(d), q), q.Mode, k)
		if !bytes.Equal(got, want) {
			t.Fatalf("k=%d: memo-served prefix differs from fresh run:\n%s\nvs\n%s", k, got, want)
		}
	}
	st2 := timer.Stats()
	if st2.QueryMemoHits-st.QueryMemoHits != 3 {
		t.Fatalf("smaller-K queries were not all memo hits: %+v -> %+v", st, st2)
	}
	if st2.JobCacheMisses != st.JobCacheMisses {
		t.Fatalf("smaller-K queries re-ran jobs: misses %d -> %d", st.JobCacheMisses, st2.JobCacheMisses)
	}

	// K beyond the primed budget: the query memo cannot serve it (its
	// entry is not exhausted on a design this size), so jobs re-run at
	// the larger budget — and the answer is still exact.
	q := Query{K: 90, Mode: model.Setup}
	got := reportBytes(t, d, mustRun(t, timer, q), q.Mode, q.K)
	want := reportBytes(t, d, mustRun(t, NewTimer(d), q), q.Mode, q.K)
	if !bytes.Equal(got, want) {
		t.Fatalf("k=90 upscale differs from fresh run:\n%s\nvs\n%s", got, want)
	}
	st3 := timer.Stats()
	if st3.QueryMemoMisses == st2.QueryMemoMisses {
		t.Fatal("K=90 after K=60 should have missed the query memo")
	}
}
