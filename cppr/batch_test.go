package cppr

import (
	"context"
	"errors"
	"testing"
	"time"

	"fastcppr/gen"
	"fastcppr/model"
)

// TestReportBatchMatchesSerial runs a mixed batch — duplicate queries,
// AlgoLCA queries differing only in K (served by one merged run),
// different modes and algorithms — and checks every result against the
// same query run serially.
func TestReportBatchMatchesSerial(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(11))
	timer := NewTimer(d)
	queries := []Query{
		{K: 10, Mode: model.Setup},
		{K: 40, Mode: model.Setup},             // merged with the 10: same LCA group
		{K: 10, Mode: model.Setup},             // exact duplicate
		{K: 10, Mode: model.Setup, Threads: 3}, // differs only in Threads: merged too
		{K: 10, Mode: model.Hold},
		{K: 10, Mode: model.Setup, Algorithm: AlgoPairwise},
		{K: 10, Mode: model.Setup, Algorithm: AlgoBranchAndBound},
		{K: 5, Mode: model.Setup, FilterCapture: true, CaptureFF: 0},
		{K: 0, Mode: model.Setup}, // valid, empty report
	}
	results, err := timer.ReportBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	for i, q := range queries {
		if results[i].Err != nil {
			t.Fatalf("query %d: %v", i, results[i].Err)
		}
		serial, err := timer.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, want := sortedSlacks(results[i].Report.Paths), sortedSlacks(serial.Paths)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d paths, serial %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d slack %d: batch %v, serial %v", i, j, got[j], want[j])
			}
		}
		if results[i].Report.Algorithm != q.Algorithm {
			t.Errorf("query %d: Algorithm = %v, want %v", i, results[i].Report.Algorithm, q.Algorithm)
		}
	}
}

// TestReportBatchPrefixClipping pins the K-merging contract directly:
// a K=3 member of a group served by a K=50 run gets exactly the 3-prefix
// and never aliases the larger member's slice.
func TestReportBatchPrefixClipping(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(5))
	timer := NewTimer(d)
	results, err := timer.ReportBatch(context.Background(),
		[]Query{{K: 3, Mode: model.Setup}, {K: 50, Mode: model.Setup}})
	if err != nil {
		t.Fatal(err)
	}
	small, large := results[0].Report.Paths, results[1].Report.Paths
	if len(small) != 3 || len(large) <= 3 {
		t.Fatalf("got %d and %d paths", len(small), len(large))
	}
	for i := range small {
		if small[i].Slack != large[i].Slack {
			t.Fatalf("slack %d: %v vs %v — small report is not a prefix", i, small[i].Slack, large[i].Slack)
		}
	}
	// Mutating one member's slice must not leak into the other.
	small[0].Slack++
	if small[0].Slack == large[0].Slack {
		t.Fatal("clipped report aliases the group run's path slice")
	}
}

// TestReportBatchInvalidQuery checks per-query error isolation: a bad
// query fails alone, the rest of the batch is answered.
func TestReportBatchInvalidQuery(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(1))
	timer := NewTimer(d)
	results, err := timer.ReportBatch(context.Background(), []Query{
		{K: -1, Mode: model.Setup},
		{K: 5, Mode: model.Setup},
		{K: 1, Algorithm: Algorithm(99)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, ErrInvalidQuery) {
		t.Errorf("query 0: err = %v, want ErrInvalidQuery", results[0].Err)
	}
	if results[1].Err != nil || len(results[1].Report.Paths) == 0 {
		t.Errorf("query 1 not answered: %+v", results[1])
	}
	if !errors.Is(results[2].Err, ErrInvalidQuery) {
		t.Errorf("query 2: err = %v, want ErrInvalidQuery", results[2].Err)
	}
}

// TestReportBatchCanceled checks that a canceled context surfaces on
// both the batch error and the per-query errors.
func TestReportBatchCanceled(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(2))
	timer := NewTimer(d)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := timer.ReportBatch(ctx, []Query{
		{K: 10, Mode: model.Setup},
		{K: 10, Mode: model.Hold},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("batch err = %v, want ErrCanceled", err)
	}
	for i := range results {
		if !errors.Is(results[i].Err, ErrCanceled) {
			t.Errorf("query %d: err = %v, want ErrCanceled", i, results[i].Err)
		}
	}
}

// TestReportBatchEmpty checks the no-op edge.
func TestReportBatchEmpty(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(0))
	timer := NewTimer(d)
	results, err := timer.ReportBatch(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("ReportBatch(nil) = %v, %v", results, err)
	}
}

// TestReportBatchPerQueryDeadline: a query's Timeout bounds only its
// own execution unit. The starved query fails with ErrDeadlineExceeded;
// the other batch entries complete and the batch-level error stays nil
// (the parent context is alive).
func TestReportBatchPerQueryDeadline(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(7))
	timer := NewTimer(d)
	queries := []Query{
		{K: 10, Mode: model.Setup, Timeout: time.Nanosecond},
		{K: 10, Mode: model.Hold},
	}
	results, err := timer.ReportBatch(context.Background(), queries)
	if err != nil {
		t.Fatalf("batch err = %v, want nil: one starved query must not fail the batch", err)
	}
	if !errors.Is(results[0].Err, ErrDeadlineExceeded) {
		t.Errorf("starved query err = %v, want ErrDeadlineExceeded", results[0].Err)
	}
	if results[1].Err != nil {
		t.Errorf("healthy query err = %v, want nil", results[1].Err)
	}
	if len(results[1].Report.Paths) == 0 {
		t.Error("healthy query returned no paths")
	}
}

// TestReportBatchTimeoutCoalescing: queries differing only in Timeout
// share one execution unit, and the shared run takes the most generous
// member budget — unlimited when any member is unlimited.
func TestReportBatchTimeoutCoalescing(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(7))
	timer := NewTimer(d)
	base := timer.Stats().ServedCoalesced
	queries := []Query{
		{K: 10, Mode: model.Setup, Timeout: time.Nanosecond},
		{K: 10, Mode: model.Setup}, // unlimited member lifts the limit
	}
	results, err := timer.ReportBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].Err != nil {
			t.Fatalf("query %d: %v (the unlimited member must lift the shared run's deadline)", i, results[i].Err)
		}
	}
	if got := timer.Stats().ServedCoalesced - base; got != 2 {
		t.Errorf("ServedCoalesced delta = %d, want 2 (both members shared one unit)", got)
	}
}
