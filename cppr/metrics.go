package cppr

import (
	"fmt"
	"strings"

	"fastcppr/model"
)

// WNS returns the worst negative slack over the report's paths: the most
// negative slack, or 0 when nothing violates. (Identical to WorstSlack
// when violations exist.)
func (r *Report) WNS() model.Time {
	if len(r.Paths) == 0 || r.Paths[0].Slack >= 0 {
		return 0
	}
	return r.Paths[0].Slack
}

// TNS returns the total negative slack over the report's paths, counting
// each endpoint once (its worst path), as signoff tools report it. The
// result is <= 0.
func (r *Report) TNS() model.Time {
	var tns model.Time
	seen := map[model.PinID]bool{}
	for _, p := range r.Paths {
		if p.Slack >= 0 {
			break // sorted ascending: no more violations
		}
		ep := p.EndPin()
		if seen[ep] {
			continue
		}
		seen[ep] = true
		tns += p.Slack
	}
	return tns
}

// NumViolations counts distinct violating endpoints in the report.
func (r *Report) NumViolations() int {
	n := 0
	seen := map[model.PinID]bool{}
	for _, p := range r.Paths {
		if p.Slack >= 0 {
			break
		}
		if !seen[p.EndPin()] {
			seen[p.EndPin()] = true
			n++
		}
	}
	return n
}

// Histogram buckets the report's slacks into equal-width bins between
// the worst and best reported slack and renders a text histogram —
// the slack-distribution view timing reviews start from.
func (r *Report) Histogram(bins int) string {
	if len(r.Paths) == 0 || bins < 1 {
		return "(no paths)\n"
	}
	lo := r.Paths[0].Slack
	hi := r.Paths[len(r.Paths)-1].Slack
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	width := (hi - lo + model.Time(bins) - 1) / model.Time(bins)
	for _, p := range r.Paths {
		b := int((p.Slack - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for b := 0; b < bins; b++ {
		from := lo + model.Time(b)*width
		bar := strings.Repeat("#", counts[b]*50/maxCount)
		fmt.Fprintf(&sb, "%10s .. %10s %6d %s\n", from, from+width, counts[b], bar)
	}
	return sb.String()
}

// CreditStats summarises the pessimism removed across the report's
// paths: how many carry credit, and the mean/max credit.
func (r *Report) CreditStats() (withCredit int, mean, max model.Time) {
	if len(r.Paths) == 0 {
		return 0, 0, 0
	}
	var total model.Time
	for _, p := range r.Paths {
		total += p.Credit
		if p.Credit > 0 {
			withCredit++
		}
		if p.Credit > max {
			max = p.Credit
		}
	}
	return withCredit, total / model.Time(len(r.Paths)), max
}
