package cppr

import (
	"time"

	"fastcppr/internal/qerr"
	"fastcppr/model"
)

// CRPRSetting selects a query's pessimism-removal credit semantics.
// The zero value defers to the timer's SDC-installed default, so plain
// queries automatically follow set_crpr_mode.
type CRPRSetting int

const (
	// CRPRDefault resolves to the snapshot's default mode: same_pin
	// unless an applied SDC said "set_crpr_mode same_transition".
	CRPRDefault CRPRSetting = iota
	// CRPRSamePin credits the full common-path window regardless of
	// clock-edge sense — the classic (most generous) CRPR.
	CRPRSamePin
	// CRPRSameTransition credits only launch/capture pairs whose clock
	// edges traverse the shared path with the same transition sense;
	// pairs split by an inverting clock cell get zero credit.
	CRPRSameTransition
)

// mode maps a resolved (non-default) setting to the model-layer mode.
func (c CRPRSetting) mode() model.CRPRMode {
	if c == CRPRSameTransition {
		return model.CRPRSameTransition
	}
	return model.CRPRSamePin
}

// crprSettingOf lifts a model-layer mode into the query setting.
func crprSettingOf(m model.CRPRMode) CRPRSetting {
	if m == model.CRPRSameTransition {
		return CRPRSameTransition
	}
	return CRPRSamePin
}

// Query describes one CPPR query: the unified request value consumed by
// Timer.Run, Timer.ReportBatch and Timer.PostCPPRSlacksCtx. It carries
// the former Options fields plus the optional capture-endpoint filter
// that previously required the separate EndpointReport entry point.
//
// The zero value is a valid query for zero paths; set K and Mode for a
// useful one. Query is a comparable value type: ReportBatch relies on
// that to merge equivalent queries.
type Query struct {
	// K is the number of post-CPPR critical paths to report (>= 0;
	// 0 yields an empty report).
	K int
	// Mode selects setup or hold analysis.
	Mode model.Mode
	// Threads bounds parallelism; <= 0 uses all available cores.
	Threads int
	// Algorithm selects the implementation; default AlgoLCA.
	Algorithm Algorithm
	// UseLiftingLCA switches AlgoLCA's LCA queries to binary lifting
	// (ablation knob; default Euler-tour RMQ).
	UseLiftingLCA bool
	// IncludePOs adds output-check paths at constrained primary outputs
	// (AlgoLCA only; extension beyond the paper).
	IncludePOs bool
	// FilterCapture restricts the query to paths captured by CaptureFF
	// (report_timing -to style; AlgoLCA only). When false (default),
	// all endpoints are analysed and CaptureFF is ignored.
	FilterCapture bool
	CaptureFF     model.FFID
	// Corners selects the delay corners analysed, as a bitmask: bit c
	// selects corner c (see CornerBit). The zero mask means corner 0
	// only — the single-corner fast path — and CornerAll selects every
	// corner of the design. A multi-corner query fans out per corner
	// and merges into a worst-corner report: paths from all selected
	// corners compete by post-CPPR slack and Report.PathCorners names
	// the corner each reported path was computed at.
	Corners CornerMask
	// DenseKernel forces AlgoLCA's candidate-generation jobs onto the
	// dense full-scan propagation kernel instead of the sparse
	// frontier-driven one (verification/ablation knob). Both kernels
	// produce byte-identical reports; only the work performed differs.
	DenseKernel bool
	// NoCache bypasses the timer's incremental caches — the per-corner
	// candidate-job cache and the per-snapshot query memo — forcing a
	// cold run (verification/ablation knob, like DenseKernel). Cached
	// and uncached runs produce byte-identical reports; only the work
	// performed differs.
	NoCache bool
	// CRPR selects the credit semantics (same_pin vs same_transition).
	// CRPRDefault defers to the snapshot's SDC default; normalization
	// resolves it to a concrete mode so equivalent queries compare
	// equal. Supported by every algorithm, oracle included.
	CRPR CRPRSetting
	// Timeout, when positive, bounds this query's execution: Run (and,
	// per execution unit, ReportBatch) derives a child context with this
	// deadline, so one slow query cannot consume a whole batch's budget —
	// it alone fails with ErrDeadlineExceeded while the other batch
	// entries complete. Zero means no per-query limit (the caller's
	// context still applies). ReportBatch coalesces queries that differ
	// only in Timeout; the shared run gets the most generous budget of
	// its members (unlimited if any member is unlimited).
	Timeout time.Duration
}

// Normalize validates q and canonicalises it in place: negative Threads
// and Timeout are clamped to 0 (all cores / no limit), a zero Corners
// mask becomes corner 0, and an ignored CaptureFF is cleared so
// equivalent queries compare equal. CornerAll is clamped to the design's corners at query time. It returns an error matching
// ErrInvalidQuery for a negative K, an unknown Algorithm, or a capture
// filter on an algorithm that cannot serve it. Range-checking CaptureFF
// against the design happens at query time, not here.
func (q *Query) Normalize() error {
	if q.K < 0 {
		return qerr.Invalid("K must be non-negative, got %d", q.K)
	}
	switch q.Algorithm {
	case AlgoLCA, AlgoPairwise, AlgoBlockwise, AlgoBranchAndBound,
		AlgoBruteForce, AlgoRerankInexact:
	default:
		return qerr.Invalid("unknown algorithm %v", q.Algorithm)
	}
	switch q.CRPR {
	case CRPRDefault, CRPRSamePin, CRPRSameTransition:
	default:
		return qerr.Invalid("unknown CRPR setting %d", int(q.CRPR))
	}
	if q.Threads < 0 {
		q.Threads = 0
	}
	if q.Timeout < 0 {
		q.Timeout = 0
	}
	if q.Corners == 0 {
		q.Corners = CornerBit(model.BaseCorner)
	}
	if q.FilterCapture {
		if q.Algorithm != AlgoLCA {
			return qerr.Invalid("capture-endpoint filtering supports AlgoLCA only, got %v", q.Algorithm)
		}
		if q.CaptureFF < 0 {
			return qerr.Invalid("FF id %d out of range", q.CaptureFF)
		}
	} else {
		q.CaptureFF = 0
	}
	return nil
}
