package cppr

import "runtime"

// Parallelism is the Timer-level parallelism budget, unifying the knobs
// that were previously spread over per-call thread arguments. Two
// independent axes:
//
//   - Workers sizes the work-stealing executor that spreads execution
//     units — (query, corner) pairs in ReportBatch, corners in a
//     multi-corner Run or PostCPPRSlacksCtx — across cores. Inside the
//     executor each unit's candidate-generation jobs are themselves
//     stealable tasks, so a batch of one big query and many small ones
//     still saturates the pool.
//   - QueryThreads is the default intra-query parallelism for queries
//     that leave Query.Threads at 0.
//
// Zero (or negative) values mean "use all available cores"
// (runtime.GOMAXPROCS). Precedence, per axis:
//
//	intra-query:  Query.Threads  >  Parallelism.QueryThreads  >  GOMAXPROCS
//	executor:     Parallelism.Workers                         >  GOMAXPROCS
//
// Results never depend on either setting: every thread count produces
// byte-identical reports. Parallelism changes wall-clock only.
type Parallelism struct {
	// Workers bounds the executor pool; <= 0 uses all available cores.
	Workers int
	// QueryThreads is the intra-query default when Query.Threads is 0;
	// <= 0 uses all available cores.
	QueryThreads int
}

// workers resolves the executor pool size.
func (p Parallelism) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// threadsFor resolves a normalized query's intra-query thread budget
// under the precedence documented on Parallelism.
func (p Parallelism) threadsFor(q Query) int {
	if q.Threads > 0 {
		return q.Threads
	}
	if p.QueryThreads > 0 {
		return p.QueryThreads
	}
	return 0 // downstream resolves 0 to GOMAXPROCS
}

// SetParallelism installs the Timer's parallelism budget. Like every
// Timer setting it takes effect atomically: queries already in flight
// keep the budget they started with, subsequent calls observe the new
// one. The zero value restores the default (all cores everywhere).
func (t *Timer) SetParallelism(p Parallelism) {
	t.par.Store(&p)
}

// Parallelism returns the currently installed budget.
func (t *Timer) Parallelism() Parallelism {
	if p := t.par.Load(); p != nil {
		return *p
	}
	return Parallelism{}
}
