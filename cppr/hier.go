package cppr

import (
	"fmt"

	"fastcppr/internal/hier"
	"fastcppr/model"
	"fastcppr/sdc"
)

// This file implements the Timer's hierarchical mode: the full CPPR
// machinery (LCA credit, all CRPR modes, MCMM corners, incremental
// serving, Fork/WhatIf) runs on a reduced design elaborated by block
// macromodel extraction (internal/hier), while the edit surface keeps
// the flat design's pin addressing. An edit inside an extracted block
// re-extracts that one block's macromodel at the edited corner and
// journals the changed boundary windows as ordinary reduced-graph
// edits, so the warm-cache invalidation model carries over unchanged.

// HierOptions configures hierarchical elaboration.
type HierOptions struct {
	// ForceExtract extracts every block even when the macromodel is not
	// smaller than the flat block. Used by differential batteries to
	// force extraction coverage; production callers leave it false so
	// uncompressible blocks stay flat.
	ForceExtract bool
}

// hierState is the hierarchical-elaboration state carried by a
// snapshot: the current flat design (copy-on-write across edits) plus
// the structural elaboration maps. It is immutable — hier edits publish
// a successor with a new flat design and the shared structural maps.
type hierState struct {
	flat *model.Design
	h    *hier.Hier
	opts HierOptions
}

// NewHierTimer elaborates d hierarchically and returns a Timer running
// on the reduced design: the design is partitioned into combinational
// blocks, each block's cloud is compressed into a boundary pin-to-pin
// early/late macromodel per corner (instances with identical signatures
// share one extracted model), and every query path — Run, ReportBatch,
// PostCPPRSlacksCtx, Fork, WhatIf — operates on the reduced graph.
// Results are value-exact at top-visible endpoints: per-endpoint worst
// pre- and post-CPPR slacks and the top-1 path slack equal the flat
// design's at every corner, mode and CRPR setting.
//
// Edits (SetArcDelay, SetArcDelayAt, WhatIf candidates) are addressed
// in the FLAT design's pin space; Design() returns the reduced design
// and FlatDesign() the flat one.
func NewHierTimer(d *model.Design, opts HierOptions) (*Timer, error) {
	h, err := hier.Elaborate(d, hier.Options{ForceExtract: opts.ForceExtract})
	if err != nil {
		return nil, err
	}
	ctr := &timerCounters{}
	ctr.macroExtracted.Add(int64(h.Extracted))
	ctr.macroReused.Add(int64(h.Reused))
	t := &Timer{}
	s := newSnapshot(h.Top, nil, 0, 0, nil, ctr, model.CRPRSamePin)
	s.hier = &hierState{flat: d, h: h, opts: opts}
	t.snap.Store(s)
	return t, nil
}

// Hierarchical reports whether the timer runs in hierarchical mode.
func (t *Timer) Hierarchical() bool { return t.snap.Load().hier != nil }

// FlatDesign returns the flat design the timer's edits are addressed
// against: in hierarchical mode the current copy-on-write flat design,
// otherwise Design() itself.
func (t *Timer) FlatDesign() *model.Design {
	s := t.snap.Load()
	if s.hier != nil {
		return s.hier.flat
	}
	return s.d
}

// setArcDelayAtHierLocked routes a flat-addressed edit in hierarchical
// mode. Kept arcs forward to the reduced graph directly; an edit on an
// internal arc of an extracted block re-extracts that block's
// macromodel at the edited corner and applies each changed boundary
// pair window as a journaled reduced-graph edit. Caller holds t.mu.
func (t *Timer) setArcDelayAtHierLocked(c model.Corner, from, to model.PinID, delay model.Window) error {
	s := t.snap.Load()
	hs := s.hier
	fd := hs.flat
	if c < 0 || int(c) >= fd.NumCorners() {
		return fmt.Errorf("cppr: corner %d out of range (design has %d corners)", int32(c), fd.NumCorners())
	}
	ai := fd.ArcBetween(from, to)
	if ai < 0 {
		return fmt.Errorf("cppr: no arc %q -> %q", fd.PinName(from), fd.PinName(to))
	}
	if delay.Early < 0 || delay.Early > delay.Late {
		return fmt.Errorf("cppr: invalid delay window %v", delay)
	}
	// The flat design is the source of truth the edit lands on first;
	// re-extraction reads it.
	var nfd *model.Design
	if c == model.BaseCorner {
		nfd = fd.CloneWithArcs()
		nfd.Arcs[ai].Delay = delay
	} else {
		var err error
		if nfd, err = fd.WithArcDelayAt(c, ai, delay); err != nil {
			return err
		}
	}
	h := hs.h
	if h.FlatToTopArc[ai] >= 0 {
		// Kept arc: the reduced design carries it verbatim (clock-tree
		// arcs included — a clock edit takes the inner full-rebuild
		// path naturally).
		if err := t.setArcDelayAtLocked(c, h.PinMap[from], h.PinMap[to], delay); err != nil {
			return err
		}
	} else {
		// Internal arc of an extracted block: re-extract only that
		// block, at the edited corner, and journal the boundary deltas.
		b := int(h.Blocks.Of[from])
		inst := &h.Instances[b]
		pairs, wins := hier.ExtractCorner(nfd, h.Blocks, b, c)
		if len(pairs) != len(inst.Macro.Pairs) {
			return fmt.Errorf("cppr: block %d macromodel changed shape under a delay edit (%d pairs, had %d)",
				b, len(pairs), len(inst.Macro.Pairs))
		}
		s.ctr.macroReextracted.Add(1)
		for i := range pairs {
			cur := t.snap.Load() // each applied delta publishes a snapshot
			topAi := inst.TopArc[i]
			if cur.d.ArcDelay(c, topAi) == wins[i] {
				continue
			}
			a := &cur.d.Arcs[topAi]
			if err := t.setArcDelayAtLocked(c, a.From, a.To, wins[i]); err != nil {
				return err
			}
		}
	}
	// Publish the successor hier state on the snapshot the inner edits
	// produced (the copy is cheap; the final store is the edit's
	// linearization point for FlatDesign readers).
	ns := *t.snap.Load()
	ns.hier = &hierState{flat: nfd, h: h, opts: hs.opts}
	t.snap.Store(&ns)
	return nil
}

// applySDCHierLocked re-applies constraints in hierarchical mode: the
// constraint set transforms the FLAT design (periods, io delays,
// derates and ideal clocks all live there), the result is re-elaborated
// — extraction results are invalidated wholesale, like every other
// cache under ApplySDC — and the false-path filter's pin exclusions are
// remapped into the reduced design (launch-pin exclusions name primary
// inputs, which are always kept). Caller holds t.mu.
func (t *Timer) applySDCHierLocked(s *snapshot, c *sdc.Constraints) (*model.Design, error) {
	hs := s.hier
	nd, filt, err := c.Apply(hs.flat)
	if err != nil {
		return nil, err
	}
	h2, err := hier.Elaborate(nd, hier.Options{ForceExtract: hs.opts.ForceExtract})
	if err != nil {
		return nil, err
	}
	s.ctr.macroExtracted.Add(int64(h2.Extracted))
	s.ctr.macroReused.Add(int64(h2.Reused))
	if filt != nil && len(filt.FromPin) > 0 {
		remapped := make(map[model.PinID]bool, len(filt.FromPin))
		for p, v := range filt.FromPin {
			np := h2.PinMap[p]
			if np == model.NoPin {
				return nil, fmt.Errorf("cppr: false-path pin %q dropped by elaboration", nd.PinName(p))
			}
			remapped[np] = v
		}
		nf := *filt
		nf.FromPin = remapped
		filt = &nf
	}
	t.noteSDCKnobs(s, c)
	crpr := s.crprDefault
	if c.CRPRSet {
		crpr = c.CRPR
	}
	ns := newSnapshot(h2.Top, filt, s.base.bw.MaxTuples, s.base.bb.MaxPops, nil, s.ctr, crpr)
	ns.hier = &hierState{flat: nd, h: h2, opts: hs.opts}
	t.snap.Store(ns)
	return nd, nil
}
