package cppr

import (
	"context"
	"sync"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// TestEditQueryRaceConsistency is the snapshot-isolation contract test
// (run it with -race for full effect): writers toggle an arc delay
// between two values and churn budgets while readers run Report and
// PostCPPRSlacks. Every reader result must be internally consistent
// with exactly one of the two design states — the full slack vector of
// either the pre-edit or the post-edit design, never a mix of the two.
func TestEditQueryRaceConsistency(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(21))

	// Pick a data arc out of an FF so the edit shifts many path slacks.
	var from, to model.PinID = model.NoPin, model.NoPin
	var base model.Window
	for _, a := range d.Arcs {
		if d.Pins[a.From].Kind == model.FFOutput {
			from, to, base = a.From, a.To, a.Delay
			break
		}
	}
	if from == model.NoPin {
		t.Fatal("no FF output arc in generated design")
	}
	alt := model.Window{Early: base.Early, Late: base.Late + model.Ns(3)}

	// Reference answers for both design states, from independent timers.
	type state struct {
		report []model.Time
		post   []EndpointSlack
	}
	refFor := func(w model.Window) state {
		ref := NewTimer(d)
		if err := ref.SetArcDelay(from, to, w); err != nil {
			t.Fatal(err)
		}
		rep, err := ref.Run(context.Background(), Query{K: 20, Mode: model.Setup})
		if err != nil {
			t.Fatal(err)
		}
		post, err := ref.PostCPPRSlacksCtx(context.Background(), Query{Mode: model.Setup})
		if err != nil {
			t.Fatal(err)
		}
		return state{report: sortedSlacks(rep.Paths), post: post}
	}
	states := [2]state{refFor(base), refFor(alt)}
	if len(states[0].report) == 0 {
		t.Fatal("no paths in reference report")
	}

	matchReport := func(got []model.Time) bool {
		for _, s := range states {
			if len(got) != len(s.report) {
				continue
			}
			ok := true
			for i := range got {
				if got[i] != s.report[i] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	matchPost := func(got []EndpointSlack) bool {
		for _, s := range states {
			if len(got) != len(s.post) {
				continue
			}
			ok := true
			for i := range got {
				if got[i] != s.post[i] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}

	timer := NewTimer(d)
	const (
		writers = 2
		readers = 6
		rounds  = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*rounds+readers*rounds)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if w == 0 {
					nw := base
					if i%2 == 0 {
						nw = alt
					}
					if err := timer.SetArcDelay(from, to, nw); err != nil {
						errs <- err
						return
					}
				} else {
					// Budget churn must never perturb query results
					// (budgets only bound the budgeted baselines).
					timer.SetBudgets(1_000_000+i, 1_000_000+i)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if r%2 == 0 {
					rep, err := timer.Run(context.Background(), Query{K: 20, Mode: model.Setup})
					if err != nil {
						errs <- err
						return
					}
					if !matchReport(sortedSlacks(rep.Paths)) {
						t.Errorf("reader %d round %d: report matches neither pre- nor post-edit design", r, i)
						return
					}
				} else {
					post, err := timer.PostCPPRSlacksCtx(context.Background(), Query{Mode: model.Setup})
					if err != nil {
						errs <- err
						return
					}
					if !matchPost(post) {
						t.Errorf("reader %d round %d: endpoint sweep matches neither pre- nor post-edit design", r, i)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEditQueryRaceBatch does the same consistency check through the
// batch executor: all queries of one batch must observe the same epoch.
func TestEditQueryRaceBatch(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(22))
	var from, to model.PinID = model.NoPin, model.NoPin
	var base model.Window
	for _, a := range d.Arcs {
		if d.Pins[a.From].Kind == model.FFOutput {
			from, to, base = a.From, a.To, a.Delay
			break
		}
	}
	if from == model.NoPin {
		t.Fatal("no FF output arc in generated design")
	}
	alt := model.Window{Early: base.Early, Late: base.Late + model.Ns(3)}

	refFor := func(w model.Window) []model.Time {
		ref := NewTimer(d)
		if err := ref.SetArcDelay(from, to, w); err != nil {
			t.Fatal(err)
		}
		rep, err := ref.Run(context.Background(), Query{K: 15, Mode: model.Setup})
		if err != nil {
			t.Fatal(err)
		}
		return sortedSlacks(rep.Paths)
	}
	refs := [2][]model.Time{refFor(base), refFor(alt)}

	same := func(a, b []model.Time) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	timer := NewTimer(d)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			nw := base
			if i%2 == 0 {
				nw = alt
			}
			if err := timer.SetArcDelay(from, to, nw); err != nil {
				t.Errorf("SetArcDelay: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		results, err := timer.ReportBatch(context.Background(), []Query{
			{K: 15, Mode: model.Setup},
			{K: 15, Mode: model.Setup, Algorithm: AlgoPairwise},
		})
		if err != nil {
			t.Fatal(err)
		}
		for qi := range results {
			if results[qi].Err != nil {
				t.Fatal(results[qi].Err)
			}
		}
		a := sortedSlacks(results[0].Report.Paths)
		b := sortedSlacks(results[1].Report.Paths)
		// Same epoch for the whole batch: both algorithms agree with the
		// SAME reference state.
		if !(same(a, refs[0]) && same(b, refs[0])) && !(same(a, refs[1]) && same(b, refs[1])) {
			t.Fatalf("round %d: batch members disagree on the design epoch", i)
		}
	}
	wg.Wait()
}
