package cppr

import (
	"context"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

func TestEndpointReportMatchesFilteredGlobal(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		timer := NewTimer(d)
		for _, mode := range model.Modes {
			// Exhaustive global report as reference.
			global, err := timer.Run(context.Background(), Query{K: 100000, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			for ffi := 0; ffi < d.NumFFs(); ffi++ {
				var want []model.Time
				for _, p := range global.Paths {
					if p.CaptureFF == model.FFID(ffi) {
						want = append(want, p.Slack)
					}
				}
				if len(want) > 10 {
					want = want[:10]
				}
				rep, err := timer.Run(context.Background(), Query{K: 10, Mode: mode, FilterCapture: true, CaptureFF: model.FFID(ffi)})
				if err != nil {
					t.Fatal(err)
				}
				got := sortedSlacks(rep.Paths)
				if len(got) != len(want) {
					t.Fatalf("seed %d %v ff%d: %d paths, want %d", seed, mode, ffi, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d %v ff%d: slack %d = %v, want %v", seed, mode, ffi, i, got[i], want[i])
					}
					if rep.Paths[i].CaptureFF != model.FFID(ffi) {
						t.Fatalf("path captured by wrong FF")
					}
				}
			}
		}
	}
}

func TestEndpointReportErrors(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(0))
	timer := NewTimer(d)
	bg := context.Background()
	if _, err := timer.Run(bg, Query{K: 1, FilterCapture: true, CaptureFF: -1}); err == nil {
		t.Error("negative FF accepted")
	}
	if _, err := timer.Run(bg, Query{K: 1, FilterCapture: true, CaptureFF: model.FFID(d.NumFFs())}); err == nil {
		t.Error("out-of-range FF accepted")
	}
	if _, err := timer.Run(bg, Query{K: 1, Algorithm: AlgoPairwise, FilterCapture: true}); err == nil {
		t.Error("non-LCA algorithm accepted")
	}
}
