package tau

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"testing"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/internal/hier"
	"fastcppr/model"
)

// arcKey flattens an arc to a comparable value for multiset equality.
type arcKey struct {
	from, to    string
	early, late model.Time
	invert      bool
}

func arcMultiset(d *model.Design) []arcKey {
	keys := make([]arcKey, len(d.Arcs))
	for i, a := range d.Arcs {
		keys[i] = arcKey{d.PinName(a.From), d.PinName(a.To), a.Delay.Early, a.Delay.Late, a.Invert}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.early < b.early || (a.early == b.early && a.late < b.late)
	})
	return keys
}

// TestWriteHierRoundTrip: reading a hierarchical file back yields
// exactly the reduced design — same pins, the same arc multiset (macro
// arcs stamped from the shared defs), and value-identical slacks to the
// flat design it was exported from.
func TestWriteHierRoundTrip(t *testing.T) {
	spec := gen.BlockedArray(13)
	spec.Instances = 6
	spec.Layers = 8
	d := gen.MustGenerateBlocked(spec)
	h, err := hier.Elaborate(d, hier.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteHier(&buf, d); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	// One def shared by every instance: blockarc lines appear once.
	if n := strings.Count(text, "instpins "); n != spec.Instances {
		t.Fatalf("%d instpins statements, want %d", n, spec.Instances)
	}
	if !strings.Contains(text, "blockarc B0 ") || strings.Contains(text, "blockarc B1 ") {
		t.Fatal("expected exactly one shared block definition B0")
	}

	rd, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumPins() != h.Top.NumPins() || rd.NumArcs() != h.Top.NumArcs() {
		t.Fatalf("read back %d pins / %d arcs, reduced design has %d / %d",
			rd.NumPins(), rd.NumArcs(), h.Top.NumPins(), h.Top.NumArcs())
	}
	got, want := arcMultiset(rd), arcMultiset(h.Top)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arc %d: %+v, want %+v", i, got[i], want[i])
		}
	}

	// End-to-end: the file's design times value-identically to the flat
	// design at the endpoints.
	ctx := context.Background()
	ft, rt := cppr.NewTimer(d), cppr.NewTimer(rd)
	for _, mode := range model.Modes {
		q := cppr.Query{K: 1, Mode: mode}
		fs, err := ft.PostCPPRSlacksCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := rt.PostCPPRSlacksCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(fs) != len(rs) {
			t.Fatalf("%v: %d vs %d endpoints", mode, len(fs), len(rs))
		}
		for i := range fs {
			if fs[i] != rs[i] {
				t.Fatalf("%v endpoint %d: %+v vs %+v", mode, i, fs[i], rs[i])
			}
		}
	}
}

// TestWriteHierCompresses: the hierarchical file must be materially
// smaller than the flat one on a repeated-block design — the format
// exists for the size win.
func TestWriteHierCompresses(t *testing.T) {
	d := gen.MustGenerateBlocked(gen.BlockedArray(13))
	var flat, hierBuf bytes.Buffer
	if err := Write(&flat, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteHier(&hierBuf, d); err != nil {
		t.Fatal(err)
	}
	if 2*hierBuf.Len() >= flat.Len() {
		t.Fatalf("hier file %d bytes vs flat %d — expected at least 2x smaller", hierBuf.Len(), flat.Len())
	}
}

func TestReadHierErrors(t *testing.T) {
	base := "design x\nperiod 1000\nclockroot clk\ncomb a\ncomb b\nff f 10 5 20 30\narc clk f/CK 10 20\narc f/Q a 5 9\narc b f/D 5 9\n"
	cases := []struct{ name, extra string }{
		{"unknown def", "instpins i0 NOPE a b\n"},
		{"undeclared pin", "blockarc B0 0 1 5 9\ninstpins i0 B0 a zz\n"},
		{"index out of range", "blockarc B0 0 7 5 9\ninstpins i0 B0 a b\n"},
		{"bad index", "blockarc B0 x 1 5 9\ninstpins i0 B0 a b\n"},
		{"short instpins", "instpins i0 B0\n"},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(base + tc.extra)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The base design plus a valid def must parse.
	ok := base + "blockarc B0 0 1 5 9\ninstpins i0 B0 a b\n"
	if _, err := Read(strings.NewReader(ok)); err != nil {
		t.Errorf("valid hier file rejected: %v", err)
	}
}
