// Package tau reads and writes circuit designs in a simple line-oriented
// text format, standing in for the TAU contest benchmark bundles used by
// the paper (which are not redistributable).
//
// Format (one statement per line, '#' starts a comment):
//
//	design  <name>
//	period  <time>
//	clockroot <pin>
//	clockbuf  <pin>
//	comb    <pin>
//	pi      <pin> <early> <late>
//	po      <pin> [<req-early> <req-late>]
//	ff      <name> <setup> <hold> <ckq-early> <ckq-late>
//	arc     <from> <to> <early> <late>
//	invarc  <from> <to> <early> <late>
//	uncertainty <setup> <hold>
//	blockarc <def> <i> <j> <early> <late>
//	instpins <inst> <def> <pin> <pin> ...
//
// Times accept "250", "250ps" or "0.25ns". An ff statement implicitly
// declares pins <name>/CK, <name>/D and <name>/Q plus the CK->Q arc.
// invarc declares an inverting clock-tree arc (the transition sense
// flips across it — what the same_transition CRPR mode tracks);
// uncertainty states the per-mode clock uncertainty margins. Both are
// omitted when zero, so files written by older versions parse
// unchanged. Statements may appear in any order except that arcs must
// follow the declaration of both endpoints.
//
// blockarc and instpins carry hierarchical designs (WriteHier): a
// blockarc declares, inside block definition <def>, an arc from the
// i-th to the j-th pin (0-based) of each instance's pin list; an
// instpins statement declares <inst> as an instance of <def> and binds
// its pin list to already-declared pins. The def's arcs are written
// once and stamped per instance, which is what makes the hierarchical
// file smaller than the flat one.
package tau

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fastcppr/model"
)

// Write serialises d in the tau text format.
func Write(w io.Writer, d *model.Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# fastcppr design file\n")
	if err := writeBody(bw, d, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// writeBody writes d's statements; arcs with skipArc[i] set are left to
// the caller (WriteHier replaces them with blockarc statements).
func writeBody(bw *bufio.Writer, d *model.Design, skipArc []bool) error {
	fmt.Fprintf(bw, "design %s\n", d.Name)
	fmt.Fprintf(bw, "period %d\n", d.Period.Ps())
	if d.Uncertainty[model.Setup] != 0 || d.Uncertainty[model.Hold] != 0 {
		fmt.Fprintf(bw, "uncertainty %d %d\n",
			d.Uncertainty[model.Setup].Ps(), d.Uncertainty[model.Hold].Ps())
	}

	ffPin := make([]bool, d.NumPins())
	for _, ff := range d.FFs {
		ffPin[ff.Clock], ffPin[ff.Data], ffPin[ff.Output] = true, true, true
	}
	piArrival := make(map[model.PinID]model.Window, len(d.PIs))
	for i, p := range d.PIs {
		piArrival[p] = d.PIArrival[i]
	}
	type poInfo struct {
		req         model.Window
		constrained bool
	}
	poByPin := make(map[model.PinID]poInfo, len(d.POs))
	for i, p := range d.POs {
		poByPin[p] = poInfo{req: d.PORequired[i], constrained: d.POConstrained[i]}
	}
	for id, p := range d.Pins {
		if ffPin[id] {
			continue // implied by the ff statement
		}
		switch p.Kind {
		case model.ClockRoot:
			fmt.Fprintf(bw, "clockroot %s\n", p.Name)
		case model.ClockBuf:
			fmt.Fprintf(bw, "clockbuf %s\n", p.Name)
		case model.Comb:
			fmt.Fprintf(bw, "comb %s\n", p.Name)
		case model.PI:
			w := piArrival[model.PinID(id)]
			fmt.Fprintf(bw, "pi %s %d %d\n", p.Name, w.Early.Ps(), w.Late.Ps())
		case model.PO:
			if info := poByPin[model.PinID(id)]; info.constrained {
				fmt.Fprintf(bw, "po %s %d %d\n", p.Name, info.req.Early.Ps(), info.req.Late.Ps())
			} else {
				fmt.Fprintf(bw, "po %s\n", p.Name)
			}
		default:
			return fmt.Errorf("tau: pin %q has FF kind but no FF", p.Name)
		}
	}
	ckqArc := make([]bool, d.NumArcs())
	for _, ff := range d.FFs {
		ai := d.FanIn(ff.Output)[0]
		ckqArc[ai] = true
		ckq := d.Arcs[ai].Delay
		fmt.Fprintf(bw, "ff %s %d %d %d %d\n",
			ff.Name, ff.Setup.Ps(), ff.Hold.Ps(), ckq.Early.Ps(), ckq.Late.Ps())
	}
	for i, a := range d.Arcs {
		if ckqArc[i] || (skipArc != nil && skipArc[i]) {
			continue // implied by the ff statement / a blockarc
		}
		stmt := "arc"
		if a.Invert {
			stmt = "invarc"
		}
		fmt.Fprintf(bw, "%s %s %s %d %d\n",
			stmt, d.PinName(a.From), d.PinName(a.To), a.Delay.Early.Ps(), a.Delay.Late.Ps())
	}
	return nil
}

// WriteFile writes d to the named file.
func WriteFile(path string, d *model.Design) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a design from the tau text format and validates it.
func Read(r io.Reader) (*model.Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	name := "unnamed"
	period := model.Ns(1)
	type arcStmt struct {
		from, to    string
		early, late model.Time
		invert      bool
		line        int
	}
	type piStmt struct {
		name        string
		early, late model.Time
	}
	type poStmt struct {
		name        string
		req         model.Window
		constrained bool
	}
	type ffStmt struct {
		name              string
		setup, hold       model.Time
		ckqEarly, ckqLate model.Time
	}
	type blockArcStmt struct {
		i, j        int
		early, late model.Time
		line        int
	}
	type instStmt struct {
		name, def string
		pins      []string
		line      int
	}
	var (
		clockroots, clockbufs, combs []string
		pos                          []poStmt
		pis                          []piStmt
		ffs                          []ffStmt
		arcs                         []arcStmt
		uncertainty                  [2]model.Time
		blockarcs                    = map[string][]blockArcStmt{}
		insts                        []instStmt
	)

	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		bad := func(msg string) error {
			return fmt.Errorf("tau: line %d: %s: %q", lineno, msg, strings.TrimSpace(line))
		}
		need := func(n int) error {
			if len(fields) != n {
				return bad(fmt.Sprintf("%s needs %d fields", fields[0], n))
			}
			return nil
		}
		times := func(idx int, out ...*model.Time) error {
			for i, o := range out {
				t, err := model.ParseTime(fields[idx+i])
				if err != nil {
					return bad(err.Error())
				}
				*o = t
			}
			return nil
		}
		switch fields[0] {
		case "design":
			if err := need(2); err != nil {
				return nil, err
			}
			name = fields[1]
		case "period":
			if err := need(2); err != nil {
				return nil, err
			}
			if err := times(1, &period); err != nil {
				return nil, err
			}
		case "clockroot":
			if err := need(2); err != nil {
				return nil, err
			}
			clockroots = append(clockroots, fields[1])
		case "clockbuf":
			if err := need(2); err != nil {
				return nil, err
			}
			clockbufs = append(clockbufs, fields[1])
		case "comb":
			if err := need(2); err != nil {
				return nil, err
			}
			combs = append(combs, fields[1])
		case "po":
			if len(fields) != 2 && len(fields) != 4 {
				return nil, bad("po needs 2 or 4 fields")
			}
			s := poStmt{name: fields[1]}
			if len(fields) == 4 {
				s.constrained = true
				if err := times(2, &s.req.Early, &s.req.Late); err != nil {
					return nil, err
				}
			}
			pos = append(pos, s)
		case "pi":
			if err := need(4); err != nil {
				return nil, err
			}
			s := piStmt{name: fields[1]}
			if err := times(2, &s.early, &s.late); err != nil {
				return nil, err
			}
			pis = append(pis, s)
		case "ff":
			if err := need(6); err != nil {
				return nil, err
			}
			s := ffStmt{name: fields[1]}
			if err := times(2, &s.setup, &s.hold, &s.ckqEarly, &s.ckqLate); err != nil {
				return nil, err
			}
			ffs = append(ffs, s)
		case "arc", "invarc":
			if err := need(5); err != nil {
				return nil, err
			}
			s := arcStmt{from: fields[1], to: fields[2], invert: fields[0] == "invarc", line: lineno}
			if err := times(3, &s.early, &s.late); err != nil {
				return nil, err
			}
			arcs = append(arcs, s)
		case "blockarc":
			if err := need(6); err != nil {
				return nil, err
			}
			s := blockArcStmt{line: lineno}
			var err error
			if s.i, err = strconv.Atoi(fields[2]); err != nil || s.i < 0 {
				return nil, bad("blockarc pin index must be a non-negative integer")
			}
			if s.j, err = strconv.Atoi(fields[3]); err != nil || s.j < 0 {
				return nil, bad("blockarc pin index must be a non-negative integer")
			}
			if err := times(4, &s.early, &s.late); err != nil {
				return nil, err
			}
			blockarcs[fields[1]] = append(blockarcs[fields[1]], s)
		case "instpins":
			if len(fields) < 4 {
				return nil, bad("instpins needs an instance, a def and at least one pin")
			}
			insts = append(insts, instStmt{name: fields[1], def: fields[2], pins: fields[3:], line: lineno})
		case "uncertainty":
			if err := need(3); err != nil {
				return nil, err
			}
			if err := times(1, &uncertainty[model.Setup], &uncertainty[model.Hold]); err != nil {
				return nil, err
			}
			if uncertainty[model.Setup] < 0 || uncertainty[model.Hold] < 0 {
				return nil, bad("uncertainty must be non-negative")
			}
		default:
			return nil, bad("unknown statement")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tau: %v", err)
	}

	b := model.NewBuilder(name, period)
	for _, n := range clockroots {
		b.AddClockRoot(n)
	}
	for _, n := range clockbufs {
		b.AddClockBuf(n)
	}
	for _, n := range combs {
		b.AddComb(n)
	}
	for _, s := range pis {
		b.AddPI(s.name, model.Window{Early: s.early, Late: s.late})
	}
	for _, s := range pos {
		if s.constrained {
			b.AddPOConstrained(s.name, s.req)
		} else {
			b.AddPO(s.name)
		}
	}
	for _, s := range ffs {
		b.AddFF(s.name, s.setup, s.hold, model.Window{Early: s.ckqEarly, Late: s.ckqLate})
	}
	for _, s := range arcs {
		from, ok := b.Pin(s.from)
		if !ok {
			return nil, fmt.Errorf("tau: line %d: arc references undeclared pin %q", s.line, s.from)
		}
		to, ok := b.Pin(s.to)
		if !ok {
			return nil, fmt.Errorf("tau: line %d: arc references undeclared pin %q", s.line, s.to)
		}
		if s.invert {
			b.AddInvertingArc(from, to, model.Window{Early: s.early, Late: s.late})
		} else {
			b.AddArc(from, to, model.Window{Early: s.early, Late: s.late})
		}
	}
	// Stamp block-definition arcs per instance, in file order.
	for _, inst := range insts {
		defArcs := blockarcs[inst.def]
		if len(defArcs) == 0 {
			return nil, fmt.Errorf("tau: line %d: instpins %q references def %q with no blockarc statements",
				inst.line, inst.name, inst.def)
		}
		pins := make([]model.PinID, len(inst.pins))
		for i, pn := range inst.pins {
			p, ok := b.Pin(pn)
			if !ok {
				return nil, fmt.Errorf("tau: line %d: instpins references undeclared pin %q", inst.line, pn)
			}
			pins[i] = p
		}
		for _, ba := range defArcs {
			if ba.i >= len(pins) || ba.j >= len(pins) {
				return nil, fmt.Errorf("tau: line %d: blockarc %d -> %d out of range for instance %q (%d pins)",
					ba.line, ba.i, ba.j, inst.name, len(pins))
			}
			b.AddArc(pins[ba.i], pins[ba.j], model.Window{Early: ba.early, Late: ba.late})
		}
	}
	for mode, u := range uncertainty {
		if u != 0 {
			b.SetClockUncertainty(model.Mode(mode), u)
		}
	}
	return b.Build()
}

// ReadFile parses the named design file.
func ReadFile(path string) (*model.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
