package tau

import (
	"bytes"
	"strings"
	"testing"

	"fastcppr/gen"
)

// FuzzRead asserts the parser never panics on arbitrary input, and that
// any design it does accept survives a write/read round trip with
// identical element counts (parse–print–parse idempotence).
func FuzzRead(f *testing.F) {
	f.Add("design d\nperiod 100\nclockroot clk\n")
	f.Add("ff f1 1 2 3 4\narc a b 1 2\n")
	f.Add("# comment only\n\n\n")
	f.Add("pi in 1 2\npo out\ncomb g\nclockbuf cb\n")
	f.Add("po out 5 10\nperiod 0.5ns\n")
	var demo bytes.Buffer
	if err := Write(&demo, gen.MustGenerate(gen.SmallOracle(1))); err != nil {
		f.Fatal(err)
	}
	f.Add(demo.String())
	f.Add(strings.Repeat("arc x y 1 2\n", 100))
	f.Add("design \x00\nperiod 9223372036854775807\n")
	f.Add("clockroot clk\nclockbuf b\ninvarc clk b 1 2\n")
	f.Add("invarc a b 1 2\nuncertainty 60 25\n")
	f.Add("uncertainty -1 0\nuncertainty 1\n")
	var divergent bytes.Buffer
	if err := Write(&divergent, gen.MustGenerate(gen.DivergentClock(7))); err != nil {
		f.Fatal(err)
	}
	f.Add(divergent.String())

	f.Fuzz(func(t *testing.T, input string) {
		d, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("accepted design fails to serialise: %v", err)
		}
		d2, err := Read(&buf)
		if err != nil {
			t.Fatalf("printed design fails to re-parse: %v\n%s", err, buf.String())
		}
		if d2.NumPins() != d.NumPins() || d2.NumArcs() != d.NumArcs() || d2.NumFFs() != d.NumFFs() {
			t.Fatalf("round trip changed element counts: %d/%d/%d vs %d/%d/%d",
				d.NumPins(), d.NumArcs(), d.NumFFs(), d2.NumPins(), d2.NumArcs(), d2.NumFFs())
		}
	})
}
