package tau

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"fastcppr/internal/hier"
	"fastcppr/model"
)

// WriteHier serialises d hierarchically: the design is elaborated by
// block macromodel extraction (internal/hier) and the REDUCED design is
// written — interior pins and internal arcs of extracted blocks are
// gone, replaced by block definitions whose macro arcs are written once
// (blockarc statements) and stamped per instance (instpins statements).
// Instances with identical base-corner signatures share one definition,
// so a design with N repeated blocks stores the block timing once, not
// N times.
//
// Reading the file back yields the reduced design: value-identical to d
// at every top-visible endpoint (see internal/hier for the exactness
// argument), but not pin-identical — WriteHier is a compressing export,
// Write the verbatim one. Like Write, only the base corner is stored.
func WriteHier(w io.Writer, d *model.Design) error {
	h, err := hier.Elaborate(d, hier.Options{})
	if err != nil {
		return err
	}
	top, bl := h.Top, h.Blocks

	// Macro arcs are carried by blockarc statements, not arc lines.
	skip := make([]bool, top.NumArcs())
	for b := range h.Instances {
		for _, ai := range h.Instances[b].TopArc {
			skip[ai] = true
		}
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# fastcppr hierarchical design file\n")
	if err := writeBody(bw, top, skip); err != nil {
		return err
	}

	// Group extracted instances by shared macro; the def's pin list is
	// the block's boundary pins in ascending local-index order, which
	// signature equality makes consistent across its instances.
	defName := map[*hier.Macro]string{}
	for b := range h.Instances {
		inst := &h.Instances[b]
		if !inst.Extracted || len(inst.Macro.Pairs) == 0 {
			continue
		}
		name, known := defName[inst.Macro]
		locals := boundaryLocals(bl, b)
		if !known {
			name = fmt.Sprintf("B%d", len(defName))
			defName[inst.Macro] = name
			pos := map[int32]int{}
			for i, l := range locals {
				pos[l] = i
			}
			for i, pr := range inst.Macro.Pairs {
				w := inst.Macro.Delay[0][i]
				fmt.Fprintf(bw, "blockarc %s %d %d %d %d\n",
					name, pos[pr.In], pos[pr.Out], w.Early.Ps(), w.Late.Ps())
			}
		}
		fmt.Fprintf(bw, "instpins i%d %s", b, name)
		for _, l := range locals {
			fmt.Fprintf(bw, " %s", top.PinName(h.PinMap[bl.Pins[b][l]]))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// boundaryLocals returns block b's boundary pins as ascending local
// indices (BoundaryIn and BoundaryOut are each PinID-sorted, and local
// index is PinID rank, so this is a sorted-merge union).
func boundaryLocals(bl *model.Blocks, b int) []int32 {
	in, out := bl.BoundaryIn[b], bl.BoundaryOut[b]
	locals := make([]int32, 0, len(in)+len(out))
	i, j := 0, 0
	for i < len(in) || j < len(out) {
		switch {
		case j == len(out) || (i < len(in) && in[i] < out[j]):
			locals = append(locals, bl.LocalIdx[in[i]])
			i++
		case i == len(in) || out[j] < in[i]:
			locals = append(locals, bl.LocalIdx[out[j]])
			j++
		default: // same pin is both boundary-in and boundary-out
			locals = append(locals, bl.LocalIdx[in[i]])
			i, j = i+1, j+1
		}
	}
	return locals
}

// WriteHierFile writes d hierarchically to the named file.
func WriteHierFile(path string, d *model.Design) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteHier(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
