package tau

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/baseline"
	"fastcppr/model"
	"fastcppr/sdc"
)

func roundTrip(t *testing.T, d *model.Design) *model.Design {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	d2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return d2
}

func TestRoundTripPreservesStructure(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(3))
	d2 := roundTrip(t, d)
	if d2.Name != d.Name || d2.Period != d.Period {
		t.Fatalf("header differs: %s/%v vs %s/%v", d2.Name, d2.Period, d.Name, d.Period)
	}
	if d2.NumPins() != d.NumPins() || d2.NumArcs() != d.NumArcs() || d2.NumFFs() != d.NumFFs() {
		t.Fatalf("sizes differ: %d/%d/%d vs %d/%d/%d",
			d2.NumPins(), d2.NumArcs(), d2.NumFFs(), d.NumPins(), d.NumArcs(), d.NumFFs())
	}
	if d2.Depth != d.Depth {
		t.Fatalf("Depth %d vs %d", d2.Depth, d.Depth)
	}
	if len(d2.PIs) != len(d.PIs) || len(d2.POs) != len(d.POs) {
		t.Fatal("PI/PO counts differ")
	}
	// Pin identity may be renumbered; compare by name.
	for _, p := range d.Pins {
		id2, ok := d2.PinByName(p.Name)
		if !ok {
			t.Fatalf("pin %q lost", p.Name)
		}
		if d2.Pins[id2].Kind != p.Kind {
			t.Fatalf("pin %q kind %v vs %v", p.Name, d2.Pins[id2].Kind, p.Kind)
		}
	}
	// Arc delays compared by endpoint names.
	for _, a := range d.Arcs {
		f2, _ := d2.PinByName(d.PinName(a.From))
		t2, _ := d2.PinByName(d.PinName(a.To))
		ai := d2.ArcBetween(f2, t2)
		if ai < 0 {
			t.Fatalf("arc %s->%s lost", d.PinName(a.From), d.PinName(a.To))
		}
		if d2.Arcs[ai].Delay != a.Delay {
			t.Fatalf("arc %s->%s delay %v vs %v",
				d.PinName(a.From), d.PinName(a.To), d2.Arcs[ai].Delay, a.Delay)
		}
	}
}

func TestRoundTripPreservesTiming(t *testing.T) {
	// The parsed design must yield identical top-k slacks.
	d := gen.MustGenerate(gen.SmallOracle(7))
	d2 := roundTrip(t, d)
	for _, mode := range model.Modes {
		a := baseline.BruteForce(d, mode, 40)
		b := baseline.BruteForce(d2, mode, 40)
		if len(a) != len(b) {
			t.Fatalf("mode %v: path counts differ", mode)
		}
		for i := range a {
			if a[i].Slack != b[i].Slack {
				t.Fatalf("mode %v: slack %d differs: %v vs %v", mode, i, a[i].Slack, b[i].Slack)
			}
		}
	}
}

func TestWriteFileReadFile(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(2))
	path := t.TempDir() + "/x.cppr"
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumArcs() != d.NumArcs() {
		t.Fatal("file round trip lost arcs")
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestReadSyntax(t *testing.T) {
	const good = `
# a comment
design demo
period 0.5ns
clockroot clk
clockbuf cb        # trailing comment
pi in1 5 12
po out1
comb g1
ff f1 20ps 10 30 40
arc clk cb 10 12
arc cb f1/CK 5 8
arc f1/Q g1 100 200
arc g1 f1/D 10 20
arc g1 out1 1 2
arc in1 g1 3 4
`
	d, err := Read(strings.NewReader(good))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if d.Name != "demo" || d.Period != 500 {
		t.Fatalf("header: %s %v", d.Name, d.Period)
	}
	if d.NumFFs() != 1 || d.NumArcs() != 7 { // 6 listed + CK->Q
		t.Fatalf("parsed %d FFs %d arcs", d.NumFFs(), d.NumArcs())
	}
	ff := d.FFs[0]
	if ff.Setup != 20 || ff.Hold != 10 {
		t.Fatalf("ff constraints %v/%v", ff.Setup, ff.Hold)
	}
	ckq := d.Arcs[d.FanIn(ff.Output)[0]].Delay
	if ckq != (model.Window{Early: 30, Late: 40}) {
		t.Fatalf("ckq = %v", ckq)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, src, errPart string
	}{
		{"unknown stmt", "bogus x", "unknown statement"},
		{"bad field count", "design", "needs 2 fields"},
		{"bad time", "period abc", "invalid time"},
		{"undeclared arc pin", "design d\nclockroot clk\narc clk nope 1 2", "undeclared pin"},
		{"bad pi", "pi x 1", "needs 4 fields"},
		{"bad ff", "ff x 1 2 3", "needs 6 fields"},
		{"invalid design", "clockroot clk\nclockbuf cb\n", "not connected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.src))
			if err == nil || !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("err = %v, want contains %q", err, c.errPart)
			}
		})
	}
}

func TestWriterOutputIsStable(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(1))
	var a, b bytes.Buffer
	if err := Write(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, d); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("writer output not deterministic")
	}
	if !strings.HasPrefix(a.String(), "# fastcppr design file\n") {
		t.Fatal("missing file banner")
	}
}

// TestRoundTripPreservesSignoffState checks the signoff extensions of
// the format: inverting clock arcs (clock-pin parity, hence
// same_transition credits) and per-mode clock uncertainty survive a
// write/read cycle, byte-compared through the brute-force path set.
func TestRoundTripPreservesSignoffState(t *testing.T) {
	d := gen.MustGenerate(gen.DivergentClock(7))
	if len(d.ClockParity) == 0 {
		t.Fatal("divergent preset has no parity data")
	}
	c, err := sdc.ParseString("set_clock_uncertainty -setup 60ps\nset_clock_uncertainty -hold 25ps\n")
	if err != nil {
		t.Fatal(err)
	}
	d, _, err = c.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	d2 := roundTrip(t, d)
	if d2.Uncertainty != d.Uncertainty {
		t.Fatalf("uncertainty %v vs %v", d2.Uncertainty, d.Uncertainty)
	}
	inverts := func(dd *model.Design) map[string]bool {
		m := map[string]bool{}
		for _, a := range dd.Arcs {
			if a.Invert {
				m[dd.PinName(a.From)+"->"+dd.PinName(a.To)] = true
			}
		}
		return m
	}
	i1, i2 := inverts(d), inverts(d2)
	if len(i1) == 0 {
		t.Fatal("divergent preset wrote no inverting arcs")
	}
	if !reflect.DeepEqual(i1, i2) {
		t.Fatalf("inverting arcs differ: %d vs %d", len(i1), len(i2))
	}
	for _, mode := range model.Modes {
		for _, crpr := range []model.CRPRMode{model.CRPRSamePin, model.CRPRSameTransition} {
			p1, err := baseline.BruteForceCRPR(context.Background(), d, mode, crpr, 10)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := baseline.BruteForceCRPR(context.Background(), d2, mode, crpr, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(p1) != len(p2) {
				t.Fatalf("%v/%v: %d vs %d paths", mode, crpr, len(p1), len(p2))
			}
			for i := range p1 {
				if p1[i].Slack != p2[i].Slack || p1[i].Credit != p2[i].Credit {
					t.Fatalf("%v/%v path %d: slack %v/%v credit %v/%v",
						mode, crpr, i, p1[i].Slack, p2[i].Slack, p1[i].Credit, p2[i].Credit)
				}
			}
		}
	}
}

// TestReadSignoffStatements parses the new statements directly.
func TestReadSignoffStatements(t *testing.T) {
	const src = `
design x
period 1000
uncertainty 60 25
clockroot clk
clockbuf b
invarc clk b 5 9
ff f1 0 0 10 10
ff f2 0 0 10 10
arc b f1/CK 1 2
arc b f2/CK 3 4
arc f1/Q f2/D 7 8
`
	d, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Uncertainty[model.Setup] != 60 || d.Uncertainty[model.Hold] != 25 {
		t.Fatalf("uncertainty = %v", d.Uncertainty)
	}
	b, _ := d.PinByName("b")
	ai := d.FanIn(b)[0]
	if !d.Arcs[ai].Invert {
		t.Fatal("invarc lost its inversion")
	}
	for _, bad := range []string{
		"uncertainty 60\n",
		"uncertainty -1 0\n",
		"invarc a b 1\n",
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
