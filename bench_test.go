// Benchmarks regenerating the paper's evaluation, one benchmark family
// per table/figure, plus ablations for the design choices called out in
// DESIGN.md. The cmd/cpprbench tool runs the same experiment definitions
// with full sweeps and pretty tables; these benchmarks provide the
// `go test -bench` entry points and stable timings for regression
// tracking.
//
// Design sizes here default to scale 0.01 of the published Table III
// element counts so `go test -bench=. -benchmem` finishes in minutes on a
// laptop; cmd/cpprbench -scale raises the scale.
package fastcppr

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/internal/core"
	"fastcppr/internal/lca"
	"fastcppr/internal/sta"
	"fastcppr/liberty"
	"fastcppr/model"
	"fastcppr/netlist"
)

const benchScale = 0.01

// designCache shares generated designs and timers across benchmarks.
var (
	benchMu     sync.Mutex
	benchCache  = map[string]*model.Design{}
	timerCache  = map[string]*cppr.Timer{}
	engineCache = map[string]*core.Engine{}
)

func benchDesign(b *testing.B, name string) *model.Design {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if d, ok := benchCache[name]; ok {
		return d
	}
	spec, err := gen.PresetSpec(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	d := gen.MustGenerate(spec)
	benchCache[name] = d
	return d
}

func benchTimer(b *testing.B, name string) *cppr.Timer {
	b.Helper()
	d := benchDesign(b, name)
	benchMu.Lock()
	defer benchMu.Unlock()
	if t, ok := timerCache[name]; ok {
		return t
	}
	t := cppr.NewTimer(d)
	timerCache[name] = t
	return t
}

func benchEngine(b *testing.B, name string) *core.Engine {
	b.Helper()
	d := benchDesign(b, name)
	benchMu.Lock()
	defer benchMu.Unlock()
	if e, ok := engineCache[name]; ok {
		return e
	}
	e := core.NewEngine(d)
	engineCache[name] = e
	return e
}

// runQuery executes one setup+hold top-k query, as Table IV measures.
// NoCache keeps every b.N iteration (and every thread-sweep variant —
// the query memo's key erases Threads) doing real engine work instead
// of serving from the timer's incremental caches.
func runQuery(b *testing.B, t *cppr.Timer, algo cppr.Algorithm, k, threads int) {
	b.Helper()
	for _, mode := range model.Modes {
		if _, err := t.Run(context.Background(), cppr.Query{K: k, Mode: mode, Threads: threads, Algorithm: algo, NoCache: true}); err != nil {
			b.Fatalf("%v: %v", algo, err)
		}
	}
}

// BenchmarkTable3Stats measures design generation plus the Table III
// statistics computation (including the FF-connectivity sweep).
func BenchmarkTable3Stats(b *testing.B) {
	for _, name := range []string{"vga_lcdv2", "leon2"} {
		b.Run(name, func(b *testing.B) {
			spec, err := gen.PresetSpec(name, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				d := gen.MustGenerate(spec)
				s := d.StatsWithConnectivity()
				if s.NumFFs == 0 {
					b.Fatal("empty design")
				}
			}
		})
	}
}

// BenchmarkTable4 measures every timer configuration of the paper's
// Table IV on representative low- and high-connectivity designs.
func BenchmarkTable4(b *testing.B) {
	algos := []cppr.Algorithm{cppr.AlgoLCA, cppr.AlgoPairwise, cppr.AlgoBlockwise, cppr.AlgoBranchAndBound}
	for _, name := range []string{"vga_lcdv2", "leon2"} {
		for _, k := range []int{1, 100, 10000} {
			for _, algo := range algos {
				b.Run(fmt.Sprintf("%s/k=%d/%s", name, k, algo), func(b *testing.B) {
					t := benchTimer(b, name)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						runQuery(b, t, algo, k, 1)
					}
				})
			}
		}
	}
}

// BenchmarkFig5KSweep measures runtime versus k on the leon2-class
// design for the paper's algorithm (the paper's Figure 5 x-axis).
func BenchmarkFig5KSweep(b *testing.B) {
	for _, k := range []int{1, 10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			t := benchTimer(b, "leon2")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runQuery(b, t, cppr.AlgoLCA, k, 1)
			}
		})
	}
}

// BenchmarkFig6ThreadSweep measures runtime versus worker threads at
// k=1000 (the paper's Figure 6 x-axis). On a single-core host this
// measures scheduling overhead only; see EXPERIMENTS.md.
func BenchmarkFig6ThreadSweep(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			t := benchTimer(b, "leon2")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runQuery(b, t, cppr.AlgoLCA, 1000, threads)
			}
		})
	}
}

// BenchmarkAblationLCAMethod compares the two LCA query structures used
// by candidate filtering (Euler-tour RMQ vs binary lifting).
func BenchmarkAblationLCAMethod(b *testing.B) {
	for _, lifting := range []bool{false, true} {
		name := "euler"
		if lifting {
			name = "lifting"
		}
		b.Run(name, func(b *testing.B) {
			e := benchEngine(b, "leon2")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.TopPaths(context.Background(), core.Options{K: 1000, Mode: model.Setup, Threads: 1, UseLiftingLCA: lifting})
			}
		})
	}
}

// BenchmarkAblationDepth verifies the O(nD) claim: designs of identical
// element counts whose clock trees differ only in depth D.
func BenchmarkAblationDepth(b *testing.B) {
	for _, depth := range []int{10, 40, 80} {
		b.Run(fmt.Sprintf("D=%d", depth), func(b *testing.B) {
			spec := gen.Medium(77)
			spec.NumFFs = 600
			spec.CombPerLayer = 600
			spec.TargetDepth = depth
			spec.DepthJitter = 0
			d := gen.MustGenerate(spec)
			e := core.NewEngine(d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.TopPaths(context.Background(), core.Options{K: 1, Mode: model.Setup, Threads: 1})
			}
		})
	}
}

// BenchmarkAblationSize verifies the O(n) factor: designs with the same
// clock depth D whose element counts scale 1x/2x/4x.
func BenchmarkAblationSize(b *testing.B) {
	for _, mult := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("n=%dx", mult), func(b *testing.B) {
			spec := gen.Medium(88)
			spec.TargetDepth = 24
			spec.DepthJitter = 0
			spec.NumFFs = 400 * mult
			spec.CombPerLayer = 400 * mult
			d := gen.MustGenerate(spec)
			e := core.NewEngine(d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.TopPaths(context.Background(), core.Options{K: 1, Mode: model.Setup, Threads: 1})
			}
		})
	}
}

// BenchmarkAblationGlobalBound quantifies the cross-job pruning: same
// query with and without the shared k-th-best bound.
func BenchmarkAblationGlobalBound(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "pruned"
		if disable {
			name = "unpruned"
		}
		b.Run(name, func(b *testing.B) {
			e := benchEngine(b, "leon2")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.TopPaths(context.Background(), core.Options{K: 10000, Mode: model.Setup, Threads: 1, DisableGlobalBound: disable})
			}
		})
	}
}

// BenchmarkSubstratePropagation isolates the shared propagation cost: a
// single graph-based arrival pass (the unit the O(nD) bound multiplies).
func BenchmarkSubstratePropagation(b *testing.B) {
	d := benchDesign(b, "leon2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := sta.Propagate(d)
		if !g.Valid[d.Root] {
			b.Fatal("bad propagation")
		}
	}
}

// BenchmarkSubstrateTreeBuild isolates the per-design preprocessing
// (clock-tree compaction, lifting tables, Euler RMQ).
func BenchmarkSubstrateTreeBuild(b *testing.B) {
	d := benchDesign(b, "leon2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := lca.New(d)
		if t.NumClockPins() == 0 {
			b.Fatal("empty tree")
		}
	}
}

// BenchmarkFrontendElaborate measures the front-end flow: random
// netlist synthesis is excluded; delay calculation + graph construction
// is the measured unit.
func BenchmarkFrontendElaborate(b *testing.B) {
	lib := liberty.Demo()
	n := netlist.Random(netlist.RandomSpec{Seed: 3, FFs: 256, Gates: 2048, ClockLevels: 5, Inputs: 32, Outputs: 32})
	wm := netlist.DefaultWireModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Elaborate(lib, wm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontendFullFlow measures netlist -> elaboration -> top-100
// post-CPPR paths, the complete pipeline a user runs.
func BenchmarkFrontendFullFlow(b *testing.B) {
	lib := liberty.Demo()
	n := netlist.Random(netlist.RandomSpec{Seed: 4, FFs: 128, Gates: 1024, ClockLevels: 4, Inputs: 16, Outputs: 16})
	wm := netlist.DefaultWireModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := n.Elaborate(lib, wm)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := cppr.NewTimer(d).Run(context.Background(), cppr.Query{K: 100, Mode: model.Setup})
		if err != nil || len(rep.Paths) == 0 {
			b.Fatal("empty report")
		}
	}
}

// batchQueries is the batch-executor workload: 8 independent queries a
// signoff client would issue together — both modes at several K values.
// ReportBatch merges them into one LCA run per mode (exact top-k paths
// are prefix-consistent across K) and shares pooled scratch, so the
// batch beats the same 8 queries run serially even on one core.
// NoCache keeps every b.N iteration doing real work — otherwise the
// cross-call query memo would serve every rep after the first and the
// batch-vs-serial comparison would measure map lookups.
var batchQueries = []cppr.Query{
	{K: 1, Mode: model.Setup, NoCache: true},
	{K: 10, Mode: model.Setup, NoCache: true},
	{K: 100, Mode: model.Setup, NoCache: true},
	{K: 1000, Mode: model.Setup, NoCache: true},
	{K: 1, Mode: model.Hold, NoCache: true},
	{K: 10, Mode: model.Hold, NoCache: true},
	{K: 100, Mode: model.Hold, NoCache: true},
	{K: 1000, Mode: model.Hold, NoCache: true},
}

// BenchmarkBatchReportBatch8 measures ReportBatch on the 8-query batch
// workload against the largest generated design.
func BenchmarkBatchReportBatch8(b *testing.B) {
	t := benchTimer(b, "leon2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := t.ReportBatch(context.Background(), batchQueries)
		if err != nil {
			b.Fatal(err)
		}
		for qi := range results {
			if results[qi].Err != nil {
				b.Fatal(results[qi].Err)
			}
		}
	}
}

// BenchmarkBatchSerial8 is the baseline: the same 8 queries, one Run
// call each.
func BenchmarkBatchSerial8(b *testing.B) {
	t := benchTimer(b, "leon2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range batchQueries {
			if _, err := t.Run(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBatchDistinct8 measures the no-merge case — 8 queries that
// cannot share a run (distinct algorithms and capture filters) — to pin
// the executor's overhead when only scratch pooling is shared.
func BenchmarkBatchDistinct8(b *testing.B) {
	t := benchTimer(b, "vga_lcdv2")
	queries := []cppr.Query{
		{K: 100, Mode: model.Setup, NoCache: true},
		{K: 100, Mode: model.Hold, NoCache: true},
		{K: 100, Mode: model.Setup, Algorithm: cppr.AlgoPairwise},
		{K: 100, Mode: model.Hold, Algorithm: cppr.AlgoPairwise},
		{K: 100, Mode: model.Setup, Algorithm: cppr.AlgoBranchAndBound},
		{K: 100, Mode: model.Hold, Algorithm: cppr.AlgoBranchAndBound},
		{K: 10, Mode: model.Setup, FilterCapture: true, CaptureFF: 0, NoCache: true},
		{K: 10, Mode: model.Setup, FilterCapture: true, CaptureFF: 1, NoCache: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := t.ReportBatch(context.Background(), queries)
		if err != nil {
			b.Fatal(err)
		}
		for qi := range results {
			if results[qi].Err != nil {
				b.Fatal(results[qi].Err)
			}
		}
	}
}

// BenchmarkTimerPrep measures full timer construction (everything a
// standalone tool would amortise across queries).
func BenchmarkTimerPrep(b *testing.B) {
	d := benchDesign(b, "vga_lcdv2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := cppr.NewTimer(d)
		if t.Design() != d {
			b.Fatal("bad timer")
		}
	}
}
